// Unit tests for src/workload: job/data accounting, Table-I profiles, the
// Table-IV job set, SWIM synthesis, and the random Fig-5 workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "workload/swim.hpp"
#include "workload/workload.hpp"

namespace lips::workload {
namespace {

cluster::Cluster small_cluster(std::size_t nodes = 4) {
  return cluster::make_ec2_cluster(nodes, 0.5, 2);
}

// ----------------------------------------------------------- accounting ---

TEST(WorkloadAccounting, JobCpuAndInput) {
  Workload w;
  const DataId d = w.add_data({"d", 640.0, StoreId{0}});
  Job j;
  j.name = "j";
  j.tcp_cpu_s_per_mb = 0.5;
  j.data = {d};
  j.num_tasks = 10;
  const JobId id = w.add_job(std::move(j));
  EXPECT_DOUBLE_EQ(w.job_input_mb(id), 640.0);
  EXPECT_DOUBLE_EQ(w.job_cpu_ecu_s(id), 320.0);
  EXPECT_DOUBLE_EQ(w.total_input_mb(), 640.0);
  EXPECT_EQ(w.total_tasks(), 10u);
}

TEST(WorkloadAccounting, InputFreeJob) {
  Workload w;
  Job j;
  j.name = "pi";
  j.cpu_fixed_ecu_s = 1000.0;
  j.num_tasks = 4;
  const JobId id = w.add_job(std::move(j));
  EXPECT_DOUBLE_EQ(w.job_input_mb(id), 0.0);
  EXPECT_DOUBLE_EQ(w.job_cpu_ecu_s(id), 1000.0);
}

TEST(WorkloadAccounting, MultiDataJob) {
  Workload w;
  const DataId d1 = w.add_data({"d1", 100.0, StoreId{0}});
  const DataId d2 = w.add_data({"d2", 200.0, StoreId{1}});
  Job j;
  j.name = "j";
  j.tcp_cpu_s_per_mb = 1.0;
  j.data = {d1, d2};
  j.num_tasks = 3;
  const JobId id = w.add_job(std::move(j));
  EXPECT_DOUBLE_EQ(w.job_input_mb(id), 300.0);
  EXPECT_DOUBLE_EQ(w.job_cpu_ecu_s(id), 300.0);
}

TEST(WorkloadAccounting, Validation) {
  Workload w;
  EXPECT_THROW(w.add_data({"zero", 0.0, StoreId{0}}), PreconditionError);
  Job bad;
  bad.name = "no-demand";
  EXPECT_THROW(w.add_job(bad), PreconditionError);
  Job dangling;
  dangling.name = "dangling";
  dangling.tcp_cpu_s_per_mb = 1.0;
  dangling.data = {DataId{5}};
  EXPECT_THROW(w.add_job(dangling), PreconditionError);
}

// -------------------------------------------------------------- Table I ---

TEST(JobProfiles, TableIValues) {
  EXPECT_DOUBLE_EQ(grep_profile().cpu_s_per_block, 20.0);
  EXPECT_DOUBLE_EQ(stress1_profile().cpu_s_per_block, 37.0);
  EXPECT_DOUBLE_EQ(stress2_profile().cpu_s_per_block, 75.0);
  EXPECT_DOUBLE_EQ(wordcount_profile().cpu_s_per_block, 90.0);
  EXPECT_TRUE(pi_profile().input_free());
  EXPECT_EQ(job_profiles().size(), 5u);
}

TEST(JobProfiles, TcpPerMb) {
  EXPECT_DOUBLE_EQ(grep_profile().tcp_cpu_s_per_mb(), 20.0 / 64.0);
  EXPECT_THROW((void)pi_profile().tcp_cpu_s_per_mb(), PreconditionError);
}

TEST(JobProfiles, IntensivenessOrdering) {
  // Table I orders Grep < Stress1 < Stress2 < WordCount < Pi(∞).
  EXPECT_LT(grep_profile().cpu_s_per_block, stress1_profile().cpu_s_per_block);
  EXPECT_LT(stress1_profile().cpu_s_per_block, stress2_profile().cpu_s_per_block);
  EXPECT_LT(stress2_profile().cpu_s_per_block,
            wordcount_profile().cpu_s_per_block);
}

// ------------------------------------------------------------- Table IV ---

TEST(Table4Workload, ShapeMatchesPaper) {
  const auto c = small_cluster();
  Rng rng(1);
  const Workload w = make_table4_workload(c, rng);
  EXPECT_EQ(w.job_count(), 9u);
  EXPECT_EQ(w.total_tasks(), 1608u);  // "more than 1608 map tasks"
  EXPECT_DOUBLE_EQ(w.total_input_mb(), 100.0 * kMBPerGB);  // 100 GB
  // J1-2 are the input-free Pi jobs.
  EXPECT_TRUE(w.job(JobId{0}).data.empty());
  EXPECT_TRUE(w.job(JobId{1}).data.empty());
  EXPECT_EQ(w.job(JobId{0}).num_tasks, 4u);
  // J5 is a 320-task Grep on 20 GB.
  EXPECT_EQ(w.job(JobId{4}).num_tasks, 320u);
  EXPECT_DOUBLE_EQ(w.job_input_mb(JobId{4}), 20.0 * kMBPerGB);
  EXPECT_DOUBLE_EQ(w.job(JobId{4}).tcp_cpu_s_per_mb, 20.0 / 64.0);
}

TEST(Table4Workload, OriginsWithinCluster) {
  const auto c = small_cluster(6);
  Rng rng(5);
  const Workload w = make_table4_workload(c, rng);
  for (const DataObject& d : w.data_objects())
    EXPECT_LT(d.origin.value(), c.store_count());
}

// ----------------------------------------------------------------- SWIM ---

TEST(SwimGenerator, JobCountAndArrivalsSorted) {
  const auto c = small_cluster(8);
  Rng rng(2);
  const SwimWorkload sw = make_swim_workload({}, c, rng);
  EXPECT_EQ(sw.workload.job_count(), 400u);
  EXPECT_EQ(sw.classes.size(), 400u);
  double prev = 0.0;
  for (const Job& j : sw.workload.jobs()) {
    EXPECT_GE(j.arrival_s, prev);
    EXPECT_LE(j.arrival_s, 24.0 * 3600.0);
    prev = j.arrival_s;
  }
}

TEST(SwimGenerator, ClassMixApproximatelyRespected) {
  const auto c = small_cluster(8);
  Rng rng(3);
  SwimParams p;
  const SwimWorkload sw = make_swim_workload(p, c, rng);
  std::size_t interactive = 0, medium = 0, large = 0;
  for (SwimClass cls : sw.classes) {
    if (cls == SwimClass::Interactive) ++interactive;
    else if (cls == SwimClass::Medium) ++medium;
    else ++large;
  }
  EXPECT_NEAR(static_cast<double>(interactive) / 400.0, 0.62, 0.08);
  EXPECT_NEAR(static_cast<double>(medium) / 400.0, 0.28, 0.08);
  EXPECT_GT(large, 0u);
}

TEST(SwimGenerator, HeavyTailedSizes) {
  const auto c = small_cluster(8);
  Rng rng(4);
  const SwimWorkload sw = make_swim_workload({}, c, rng);
  std::vector<double> sizes;
  for (std::size_t k = 0; k < sw.workload.job_count(); ++k)
    sizes.push_back(sw.workload.job_input_mb(JobId{k}));
  std::sort(sizes.begin(), sizes.end());
  const double median = sizes[sizes.size() / 2];
  const double p95 = sizes[static_cast<std::size_t>(0.95 * sizes.size())];
  // The tail must dominate the median by a large factor (heavy tail).
  EXPECT_GT(p95 / median, 10.0);
  // No job exceeds the configured cap.
  EXPECT_LE(sizes.back(), SwimParams{}.max_input_mb + 1e-9);
}

TEST(SwimGenerator, TasksScaleWithBlocks) {
  const auto c = small_cluster(8);
  Rng rng(6);
  const SwimWorkload sw = make_swim_workload({}, c, rng);
  for (std::size_t k = 0; k < sw.workload.job_count(); ++k) {
    const Job& j = sw.workload.job(JobId{k});
    const double blocks = mb_to_blocks(sw.workload.job_input_mb(JobId{k}));
    EXPECT_EQ(j.num_tasks,
              std::max<std::size_t>(
                  1, static_cast<std::size_t>(std::ceil(blocks))));
  }
}

TEST(SwimGenerator, DeterministicForSeed) {
  const auto c = small_cluster(8);
  Rng r1(9), r2(9);
  const SwimWorkload a = make_swim_workload({}, c, r1);
  const SwimWorkload b = make_swim_workload({}, c, r2);
  ASSERT_EQ(a.workload.job_count(), b.workload.job_count());
  for (std::size_t k = 0; k < a.workload.job_count(); ++k) {
    EXPECT_DOUBLE_EQ(a.workload.job(JobId{k}).arrival_s,
                     b.workload.job(JobId{k}).arrival_s);
    EXPECT_DOUBLE_EQ(a.workload.job_input_mb(JobId{k}),
                     b.workload.job_input_mb(JobId{k}));
  }
}

// -------------------------------------------------------- trace loader ---

TEST(SwimLoader, ParsesCommentsBlanksAndFields) {
  const auto c = small_cluster(8);
  Rng rng(3);
  std::istringstream trace(
      "# synthetic replay\n"
      "\n"
      "   \t\n"
      "100.5 512\n"
      "50 4096 45\n"       // explicit CPU column: 45 ECU-s per block
      "# trailing comment\n"
      "7200 30000\n");
  const SwimWorkload sw = load_swim_trace(trace, c, rng);
  ASSERT_EQ(sw.workload.job_count(), 3u);
  // Jobs come back sorted by arrival.
  EXPECT_DOUBLE_EQ(sw.workload.job(JobId{0}).arrival_s, 50.0);
  EXPECT_DOUBLE_EQ(sw.workload.job(JobId{1}).arrival_s, 100.5);
  EXPECT_DOUBLE_EQ(sw.workload.job(JobId{2}).arrival_s, 7200.0);
  EXPECT_DOUBLE_EQ(sw.workload.job_input_mb(JobId{0}), 4096.0);
  // The explicit CPU column pins tcp exactly (per-MB = per-block / 64).
  EXPECT_DOUBLE_EQ(sw.workload.job(JobId{0}).tcp_cpu_s_per_mb,
                   45.0 / kBlockSizeMB);
  // Classes by size: 512 MB interactive, 4 GB medium, ~29 GB large.
  EXPECT_EQ(sw.classes[0], SwimClass::Medium);
  EXPECT_EQ(sw.classes[1], SwimClass::Interactive);
  EXPECT_EQ(sw.classes[2], SwimClass::Large);
  // Task counts scale with 64 MB blocks.
  EXPECT_EQ(sw.workload.job(JobId{1}).num_tasks, 8u);
  EXPECT_EQ(sw.workload.job(JobId{0}).num_tasks, 64u);
}

TEST(SwimLoader, MalformedLinesThrowWithLineNumber) {
  const auto c = small_cluster(4);
  const auto load = [&](const std::string& text) {
    Rng rng(1);
    std::istringstream in(text);
    return load_swim_trace(in, c, rng);
  };
  const auto expect_throw_mentioning = [&](const std::string& text,
                                           const std::string& needle) {
    try {
      (void)load(text);
      FAIL() << "expected PreconditionError for: " << text;
    } catch (const PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  expect_throw_mentioning("abc 100\n", "line 1");
  expect_throw_mentioning("10\n", "line 1");                 // missing size
  expect_throw_mentioning("0 100\n10 x\n", "line 2");        // bad size
  expect_throw_mentioning("10 100 5 9\n", "trailing");       // 4 fields
  expect_throw_mentioning("-1 100\n", "arrival");
  expect_throw_mentioning("10 0\n", "input MB");
  expect_throw_mentioning("10 100 0\n", "ECU");              // bad CPU column
}

TEST(SwimLoader, EmptyTraceThrows) {
  const auto c = small_cluster(4);
  Rng rng(1);
  std::istringstream empty("");
  EXPECT_THROW((void)load_swim_trace(empty, c, rng), PreconditionError);
  Rng rng2(1);
  std::istringstream comments_only("# header\n\n# more\n");
  EXPECT_THROW((void)load_swim_trace(comments_only, c, rng2),
               PreconditionError);
}

TEST(SwimLoader, DeterministicForSeed) {
  const auto c = small_cluster(8);
  const std::string text =
      "0 512\n100 2048\n200 512 30\n300 65536\n400 77\n";
  Rng r1(42), r2(42);
  std::istringstream in1(text), in2(text);
  const SwimWorkload a = load_swim_trace(in1, c, r1);
  const SwimWorkload b = load_swim_trace(in2, c, r2);
  ASSERT_EQ(a.workload.job_count(), b.workload.job_count());
  for (std::size_t k = 0; k < a.workload.job_count(); ++k) {
    EXPECT_DOUBLE_EQ(a.workload.job(JobId{k}).tcp_cpu_s_per_mb,
                     b.workload.job(JobId{k}).tcp_cpu_s_per_mb);
    EXPECT_EQ(a.workload.data(a.workload.job(JobId{k}).data[0]).origin,
              b.workload.data(b.workload.job(JobId{k}).data[0]).origin);
  }
  // A different seed scatters origins differently (sanity that the rng is
  // actually consulted).
  Rng r3(43);
  std::istringstream in3(text);
  const SwimWorkload c2 = load_swim_trace(in3, c, r3);
  bool any_diff = false;
  for (std::size_t k = 0; k < a.workload.job_count(); ++k)
    any_diff = any_diff ||
               a.workload.job(JobId{k}).tcp_cpu_s_per_mb !=
                   c2.workload.job(JobId{k}).tcp_cpu_s_per_mb ||
               a.workload.data(a.workload.job(JobId{k}).data[0]).origin !=
                   c2.workload.data(c2.workload.job(JobId{k}).data[0]).origin;
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------ random workload ---

TEST(RandomWorkload, TaskBudgetExact) {
  const auto c = small_cluster(4);
  Rng rng(12);
  RandomWorkloadParams p;
  p.n_tasks = 203;
  p.tasks_per_job = 10;
  const Workload w = make_random_workload(p, c, rng);
  EXPECT_EQ(w.total_tasks(), 203u);
  // 20 jobs of 10 plus one of 3.
  EXPECT_EQ(w.job_count(), 21u);
}

TEST(RandomWorkload, ParameterRangesRespected) {
  const auto c = small_cluster(4);
  Rng rng(13);
  RandomWorkloadParams p;
  p.n_tasks = 100;
  const Workload w = make_random_workload(p, c, rng);
  for (std::size_t k = 0; k < w.job_count(); ++k) {
    const double cpu = w.job_cpu_ecu_s(JobId{k});
    EXPECT_GE(cpu, 0.0);
    EXPECT_LE(cpu, p.cpu_hi_ecu_s + 1e-9);
    EXPECT_LE(w.job_input_mb(JobId{k}), p.input_hi_mb + 1e-9);
  }
}

}  // namespace
}  // namespace lips::workload
