// Hand-computed billing regression tests. Every expected number below is
// derived on paper from the cluster parameters — no golden values copied
// from a prior run — so a unit mixup or rounding slip anywhere on the
// billing path (execution, read transfer, placement moves, fault waste)
// breaks an assertion whose comment shows the arithmetic.
#include <gtest/gtest.h>

#include "core/lips_policy.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sim/simulator.hpp"

namespace lips::sim {
namespace {

// One 1-ECU machine in zone a; one store in zone b (not co-located), so
// every read crosses the priced link.
cluster::Cluster remote_store_cluster() {
  cluster::Cluster c;
  const ZoneId za = c.add_zone("a");
  const ZoneId zb = c.add_zone("b");
  cluster::Machine m;
  m.name = "m0";
  m.zone = za;
  m.throughput_ecu = 1.0;
  m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(2.0);
  m.map_slots = 1;
  m.uptime_s = 1e9;
  c.add_machine(std::move(m));
  cluster::DataStore s;
  s.name = "s0";
  s.zone = zb;
  s.capacity_mb = 1e9;
  c.add_store(std::move(s));
  c.finalize();
  c.set_ms_cost_mc_per_mb(MachineId{0}, StoreId{0}, McPerMb::mc_per_mb(0.25));
  c.set_bandwidth_mb_s(MachineId{0}, StoreId{0}, BytesPerSec::mb_per_s(10.0));
  return c;
}

TEST(Billing, RemoteReadChargesExecutionPlusTransfer) {
  // 128 MB at 0.5 ECU-s/MB on a 2.0 m¢/ECU-s machine:
  //   execution = 128 · 0.5 · 2.0 = 128 m¢
  //   read      = 128 MB · 0.25 m¢/MB = 32 m¢
  //   makespan  = 128/10 s read + 64 ECU-s / 1 ECU = 12.8 + 64 = 76.8 s
  const cluster::Cluster c = remote_store_cluster();
  workload::Workload w;
  const DataId d = w.add_data({"d", 128.0, StoreId{0}});
  workload::Job j;
  j.name = "scan";
  j.tcp_cpu_s_per_mb = 0.5;
  j.data = {d};
  j.num_tasks = 1;
  w.add_job(std::move(j));
  sched::FifoLocalityScheduler fifo;
  const SimResult r = simulate(c, w, fifo);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.execution_cost_mc.mc(), 128.0);
  EXPECT_DOUBLE_EQ(r.read_transfer_cost_mc.mc(), 32.0);
  EXPECT_DOUBLE_EQ(r.placement_transfer_cost_mc.mc(), 0.0);
  EXPECT_DOUBLE_EQ(r.total_cost_mc.mc(), 160.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 76.8);
  EXPECT_DOUBLE_EQ(r.data_local_fraction.value(), 0.0);
}

// One machine, one co-located store: a crash mid-task bills the dead work
// to wasted_cost_mc and the rerun pays full price again.
cluster::Cluster single_node_cluster() {
  cluster::Cluster c;
  const ZoneId z = c.add_zone("a");
  cluster::Machine m;
  m.name = "m0";
  m.zone = z;
  m.throughput_ecu = 1.0;
  m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(1.0);
  m.map_slots = 1;
  m.uptime_s = 1e9;
  c.add_machine(std::move(m));
  cluster::DataStore s;
  s.name = "s0";
  s.zone = z;
  s.capacity_mb = 1e9;
  s.colocated_machine = 0;
  c.add_store(std::move(s));
  c.finalize();
  return c;
}

TEST(Billing, CrashMidTaskBillsDeadWorkAsWaste) {
  // A 100 ECU-s input-free task at 1.0 m¢/ECU-s starts at t=0. The machine
  // dies at t=40 (40/100 of the duration billed → 40 m¢, all wasted),
  // repairs for 60 s (back at t=100), and the rerun pays the full 100 m¢:
  //   execution = 40 + 100 = 140 m¢, wasted = 40 m¢, makespan = 200 s.
  const cluster::Cluster c = single_node_cluster();
  workload::Workload w;
  workload::Job j;
  j.name = "burn";
  j.cpu_fixed_ecu_s = 100.0;
  j.num_tasks = 1;
  w.add_job(std::move(j));
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.faults.crash(/*time_s=*/40.0, /*machine=*/0, /*repair_s=*/60.0);
  const SimResult r = simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_killed_by_faults, 1u);
  EXPECT_DOUBLE_EQ(r.wasted_cost_mc.mc(), 40.0);
  EXPECT_DOUBLE_EQ(r.execution_cost_mc.mc(), 140.0);
  EXPECT_DOUBLE_EQ(r.total_cost_mc.mc(), 140.0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 200.0);
}

// Two zones: expensive machine owns the data, cheap machine across a priced
// store-to-store link. LiPS moves the data and the move is billed at
// exactly size × ss price.
cluster::Cluster two_zone_cluster() {
  cluster::Cluster c;
  const ZoneId za = c.add_zone("a");
  const ZoneId zb = c.add_zone("b");
  int i = 0;
  for (const ZoneId z : {za, zb}) {
    cluster::Machine m;
    m.name = "m" + std::to_string(i);
    m.zone = z;
    m.throughput_ecu = 1.0;
    m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(i == 0 ? 5.0 : 1.0);
    m.map_slots = 1;
    m.uptime_s = 1e9;
    const MachineId id = c.add_machine(std::move(m));
    cluster::DataStore s;
    s.name = "s" + std::to_string(i++);
    s.zone = z;
    s.capacity_mb = 1e9;
    s.colocated_machine = id.value();
    c.add_store(std::move(s));
  }
  c.finalize();
  c.set_ss_cost_mc_per_mb(StoreId{0}, StoreId{1}, McPerMb::mc_per_mb(0.5));
  return c;
}

TEST(Billing, DataMoveBillsSizeTimesLinkPrice) {
  // CPU-heavy job (20 ECU-s/MB over 256 MB): running on the 5× machine
  // costs 4 m¢/ECU-s more than the cheap one, dwarfing the 0.5 m¢/MB move.
  // LiPS relocates all 256 MB: placement = 256 · 0.5 = 128 m¢ exactly, and
  // total = execution + reads + placement.
  const cluster::Cluster c = two_zone_cluster();
  workload::Workload w;
  const DataId d = w.add_data({"d", 256.0, StoreId{0}});
  workload::Job j;
  j.name = "heavy";
  j.tcp_cpu_s_per_mb = 20.0;
  j.data = {d};
  j.num_tasks = 4;
  w.add_job(std::move(j));
  core::LipsPolicyOptions lo;
  lo.epoch_s = 10000.0;
  core::LipsPolicy lips(lo);
  const SimResult r = simulate(c, w, lips);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.placement_transfer_cost_mc.mc(), 128.0);
  EXPECT_DOUBLE_EQ(
      r.total_cost_mc.mc(),
      (r.execution_cost_mc + r.read_transfer_cost_mc +
       r.placement_transfer_cost_mc + r.ingest_replication_cost_mc)
          .mc());
  EXPECT_DOUBLE_EQ(r.wasted_cost_mc.mc(), 0.0);
  EXPECT_DOUBLE_EQ(r.speculation_cost_mc.mc(), 0.0);
}

}  // namespace
}  // namespace lips::sim
