// Tests for DAG leveling (workload/dag) and the per-level LiPS driver
// (core/dag_driver) — paper §III's reduction of dependent workloads to
// independent levels.
#include <gtest/gtest.h>

#include "core/dag_driver.hpp"
#include "workload/dag.hpp"

namespace lips {
namespace {

using workload::JobDag;

// ------------------------------------------------------------- leveling ---

TEST(JobDag, EmptyDagIsOneLevel) {
  JobDag dag(4);
  const auto levels = dag.levels();
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0].size(), 4u);
}

TEST(JobDag, ChainMakesOneLevelPerJob) {
  JobDag dag(4);
  dag.add_dependency(JobId{0}, JobId{1});
  dag.add_dependency(JobId{1}, JobId{2});
  dag.add_dependency(JobId{2}, JobId{3});
  const auto levels = dag.levels();
  ASSERT_EQ(levels.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(levels[i].size(), 1u);
    EXPECT_EQ(levels[i][0], JobId{i});
  }
}

TEST(JobDag, DiamondLevelsCorrectly) {
  // Diamond: 0 feeds 1 and 2, which both feed 3.
  JobDag dag(4);
  dag.add_dependency(JobId{0}, JobId{1});
  dag.add_dependency(JobId{0}, JobId{2});
  dag.add_dependency(JobId{1}, JobId{3});
  dag.add_dependency(JobId{2}, JobId{3});
  const auto levels = dag.levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], (std::vector<JobId>{JobId{0}}));
  EXPECT_EQ(levels[1], (std::vector<JobId>{JobId{1}, JobId{2}}));
  EXPECT_EQ(levels[2], (std::vector<JobId>{JobId{3}}));
}

TEST(JobDag, EveryPredecessorInEarlierLevel) {
  // Random-ish DAG: edges only from lower to higher ids (acyclic).
  Rng rng(99);
  JobDag dag(12);
  for (std::size_t a = 0; a < 12; ++a)
    for (std::size_t b = a + 1; b < 12; ++b)
      if (rng.bernoulli(0.25)) dag.add_dependency(JobId{a}, JobId{b});
  const auto levels = dag.levels();
  std::vector<std::size_t> level_of(12, SIZE_MAX);
  for (std::size_t li = 0; li < levels.size(); ++li)
    for (const JobId j : levels[li]) level_of[j.value()] = li;
  std::size_t total = 0;
  for (std::size_t li = 0; li < levels.size(); ++li) total += levels[li].size();
  EXPECT_EQ(total, 12u);
  for (std::size_t j = 0; j < 12; ++j)
    for (const std::size_t pred : dag.predecessors(JobId{j}))
      EXPECT_LT(level_of[pred], level_of[j]);
}

TEST(JobDag, CycleDetected) {
  JobDag dag(3);
  dag.add_dependency(JobId{0}, JobId{1});
  dag.add_dependency(JobId{1}, JobId{2});
  EXPECT_FALSE(dag.has_cycle());
  dag.add_dependency(JobId{2}, JobId{0});
  EXPECT_TRUE(dag.has_cycle());
  EXPECT_THROW(dag.levels(), PreconditionError);
}

TEST(JobDag, Validation) {
  JobDag dag(2);
  EXPECT_THROW(dag.add_dependency(JobId{0}, JobId{0}), PreconditionError);
  EXPECT_THROW(dag.add_dependency(JobId{0}, JobId{5}), PreconditionError);
  // Duplicate edges are idempotent.
  dag.add_dependency(JobId{0}, JobId{1});
  dag.add_dependency(JobId{0}, JobId{1});
  EXPECT_EQ(dag.predecessors(JobId{1}).size(), 1u);
}

// ----------------------------------------------------------- DAG driver ---

workload::Workload pipeline_workload(const cluster::Cluster& c, Rng& rng) {
  // Three-stage pipeline: ingest → transform → aggregate, each a job over
  // its own data object.
  workload::Workload w;
  for (int i = 0; i < 3; ++i) {
    const DataId d = w.add_data({"stage-" + std::to_string(i), 640.0,
                                 StoreId{rng.index(c.store_count())}});
    workload::Job j;
    j.name = "stage-" + std::to_string(i);
    j.tcp_cpu_s_per_mb = 1.0 + i;
    j.data = {d};
    j.num_tasks = 10;
    w.add_job(std::move(j));
  }
  return w;
}

TEST(DagDriver, SchedulesEveryLevel) {
  const cluster::Cluster c = cluster::make_ec2_cluster(6, 0.5, 2);
  Rng rng(5);
  const workload::Workload w = pipeline_workload(c, rng);
  workload::JobDag dag(3);
  dag.add_dependency(JobId{0}, JobId{1});
  dag.add_dependency(JobId{1}, JobId{2});
  const core::DagSchedule ds = core::schedule_dag(c, w, dag);
  ASSERT_TRUE(ds.feasible);
  ASSERT_EQ(ds.level_count(), 3u);
  Millicents sum = Millicents::zero();
  for (const core::LevelSchedule& ls : ds.levels) {
    EXPECT_TRUE(ls.schedule.optimal());
    sum += ls.schedule.objective_mc;
  }
  EXPECT_NEAR(ds.total_cost_mc.mc(), sum.mc(), 1e-9);
}

TEST(DagDriver, IndependentJobsMatchSingleShot) {
  // With no dependencies the driver produces one level whose cost equals a
  // plain co-scheduling solve of the whole workload.
  const cluster::Cluster c = cluster::make_ec2_cluster(6, 0.5, 2);
  Rng rng(6);
  const workload::Workload w = pipeline_workload(c, rng);
  workload::JobDag dag(3);
  const core::DagSchedule ds = core::schedule_dag(c, w, dag);
  ASSERT_TRUE(ds.feasible);
  ASSERT_EQ(ds.level_count(), 1u);
  const core::LpSchedule whole = core::solve_co_scheduling(c, w);
  ASSERT_TRUE(whole.optimal());
  EXPECT_NEAR(ds.total_cost_mc.mc(), whole.objective_mc.mc(),
              1e-6 * (1.0 + whole.objective_mc.mc()));
}

TEST(DagDriver, PlacementsPersistAcrossLevels) {
  // Two levels sharing one data object: once level 0 moves it next to the
  // cheap machine, level 1 must not be charged the move again.
  cluster::Cluster c;
  const ZoneId za = c.add_zone("a");
  const ZoneId zb = c.add_zone("b");
  auto add = [&](ZoneId z, double price) {
    cluster::Machine m;
    m.name = "m";
    m.zone = z;
    m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(price);
    m.uptime_s = 1e9;
    const MachineId id = c.add_machine(std::move(m));
    cluster::DataStore s;
    s.name = "s";
    s.zone = z;
    s.capacity_mb = 1e9;
    s.colocated_machine = id.value();
    c.add_store(std::move(s));
  };
  add(za, 5.0);
  add(zb, 1.0);
  c.finalize();

  workload::Workload w;
  const DataId shared = w.add_data({"shared", 640.0, StoreId{0}});
  for (int i = 0; i < 2; ++i) {
    workload::Job j;
    j.name = "reader-" + std::to_string(i);
    j.tcp_cpu_s_per_mb = 10.0;  // CPU-heavy: worth moving to the cheap zone
    j.data = {shared};
    j.num_tasks = 4;
    w.add_job(std::move(j));
  }
  workload::JobDag dag(2);
  dag.add_dependency(JobId{0}, JobId{1});
  const core::DagSchedule ds = core::schedule_dag(c, w, dag);
  ASSERT_TRUE(ds.feasible);
  ASSERT_EQ(ds.level_count(), 2u);
  // Level 0 pays the cross-zone move (or remote read) once...
  const double first = ds.levels[0].schedule.objective_mc.mc();
  // ...level 1 reads locally from the new origin: execution cost only.
  const double second = ds.levels[1].schedule.objective_mc.mc();
  EXPECT_LT(second, first);
  EXPECT_NEAR(second, 6400.0 * 1.0, 1e-6);  // 6400 ECU-s at 1 m¢, no moves
}

TEST(DagDriver, InfeasibleLevelReported) {
  const cluster::Cluster c = cluster::make_ec2_cluster(2, 0.0, 1);
  workload::Workload w;
  const DataId d = w.add_data({"big", 64000.0, StoreId{0}});
  workload::Job j;
  j.name = "too-big";
  j.tcp_cpu_s_per_mb = 100.0;  // exceeds uptime capacity
  j.data = {d};
  j.num_tasks = 10;
  w.add_job(std::move(j));
  workload::JobDag dag(1);
  const core::DagSchedule ds = core::schedule_dag(c, w, dag);
  EXPECT_FALSE(ds.feasible);
}

TEST(DagDriver, RejectsOnlineOptions) {
  const cluster::Cluster c = cluster::make_ec2_cluster(2, 0.0, 1);
  workload::Workload w;
  workload::Job j;
  j.name = "pi";
  j.cpu_fixed_ecu_s = 10.0;
  w.add_job(std::move(j));
  workload::JobDag dag(1);
  core::ModelOptions opt;
  opt.epoch_s = 100.0;
  EXPECT_THROW(core::schedule_dag(c, w, dag, opt), PreconditionError);
}

// ------------------------------------------------------- fractional JD ---

TEST(FractionalAccess, TrafficScalesWithJdFraction) {
  // A grep-like job scanning 25% of a shared corpus: reads, CPU, and cost
  // all scale by the access fraction.
  workload::Workload w;
  const DataId d = w.add_data({"corpus", 1000.0, StoreId{0}});
  workload::Job j;
  j.name = "partial";
  j.tcp_cpu_s_per_mb = 2.0;
  j.data = {d};
  j.data_fractions = {0.25};
  j.num_tasks = 4;
  const JobId id = w.add_job(std::move(j));
  EXPECT_DOUBLE_EQ(w.job_access_fraction(id, 0), 0.25);
  EXPECT_DOUBLE_EQ(w.job_input_mb(id), 250.0);
  EXPECT_DOUBLE_EQ(w.job_cpu_ecu_s(id), 500.0);
}

TEST(FractionalAccess, Validation) {
  workload::Workload w;
  const DataId d = w.add_data({"d", 100.0, StoreId{0}});
  workload::Job j;
  j.name = "bad";
  j.tcp_cpu_s_per_mb = 1.0;
  j.data = {d};
  j.data_fractions = {0.5, 0.5};  // arity mismatch
  EXPECT_THROW(w.add_job(j), PreconditionError);
  j.data_fractions = {0.0};  // zero access is not an access
  EXPECT_THROW(w.add_job(j), PreconditionError);
  j.data_fractions = {1.5};  // cannot read more than the object
  EXPECT_THROW(w.add_job(j), PreconditionError);
}

TEST(FractionalAccess, LpChargesPartialTraffic) {
  // Same job at JD=1.0 vs JD=0.25 on a two-node cluster: the partial
  // scan's optimal cost must be about a quarter of the full scan's
  // (execution and reads both scale).
  cluster::Cluster c;
  const ZoneId za = c.add_zone("a");
  const ZoneId zb = c.add_zone("b");
  auto add = [&](ZoneId z, double price) {
    cluster::Machine m;
    m.name = "m";
    m.zone = z;
    m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(price);
    m.uptime_s = 1e9;
    const MachineId id = c.add_machine(std::move(m));
    cluster::DataStore s;
    s.name = "s";
    s.zone = z;
    s.capacity_mb = 1e9;
    s.colocated_machine = id.value();
    c.add_store(std::move(s));
  };
  add(za, 5.0);
  add(zb, 5.0);
  c.finalize();

  auto make = [&](double frac) {
    workload::Workload w;
    const DataId d = w.add_data({"d", 640.0, StoreId{0}});
    workload::Job j;
    j.name = "scan";
    j.tcp_cpu_s_per_mb = 1.0;
    j.data = {d};
    if (frac < 1.0) j.data_fractions = {frac};
    j.num_tasks = 8;
    w.add_job(std::move(j));
    return w;
  };
  const core::LpSchedule full = core::solve_co_scheduling(c, make(1.0));
  const core::LpSchedule quarter = core::solve_co_scheduling(c, make(0.25));
  ASSERT_TRUE(full.optimal());
  ASSERT_TRUE(quarter.optimal());
  EXPECT_NEAR(quarter.objective_mc.mc(), 0.25 * full.objective_mc.mc(),
              1e-6 * (1.0 + full.objective_mc.mc()));
}

TEST(FractionalAccess, SubsetSolveIgnoresForeignData) {
  // Solving a job subset must not create placement variables (or capacity
  // pressure) for data only other jobs access.
  const cluster::Cluster c = cluster::make_ec2_cluster(4, 0.5, 2);
  workload::Workload w;
  const DataId mine = w.add_data({"mine", 640.0, StoreId{0}});
  w.add_data({"foreign", 640000.0, StoreId{1}});  // huge, accessed by nobody scheduled
  workload::Job j;
  j.name = "me";
  j.tcp_cpu_s_per_mb = 1.0;
  j.data = {mine};
  j.num_tasks = 4;
  const JobId id = w.add_job(std::move(j));
  workload::Job other;
  other.name = "other";
  other.tcp_cpu_s_per_mb = 1.0;
  other.data = {DataId{1}};
  other.num_tasks = 4;
  w.add_job(std::move(other));

  const core::LpSchedule s = core::solve_co_scheduling(c, w, {}, {id});
  ASSERT_TRUE(s.optimal());
  for (const core::DataPlacement& p : s.placements)
    EXPECT_EQ(p.data, mine);  // no xd for the foreign object
}

}  // namespace
}  // namespace lips
