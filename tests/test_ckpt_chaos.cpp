// Kill -9 chaos suite for checkpoint/restore (DESIGN.md §11, ctest label
// `chaos`): a child process runs a real simulation with per-epoch
// checkpointing and is SIGKILLed mid-run — no destructors, no flushes, the
// honest crash. The parent then recovers from whatever the dead process
// left on disk and must finish with *exactly* the uninterrupted run's
// schedule digest, cost ledger, and event trace, across many seeds and with
// cluster fault storms plus LP solver fault injection active. Any
// divergence is written out as a human-readable report (the CI chaos lane
// uploads it as an artifact).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "ckpt/divergence.hpp"
#include "ckpt/snapshot.hpp"
#include "ckpt/store.hpp"
#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/lips_policy.hpp"
#include "lp/solver_faults.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "workload/swim.hpp"

namespace lips {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& tag) {
  const fs::path p = fs::path(::testing::TempDir()) / ("lips_chaos_" + tag);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

/// Where divergence reports land; the CI chaos lane uploads this directory.
std::string divergence_report_path(const std::string& tag) {
  const char* env = std::getenv("LIPS_DIVERGENCE_DIR");
  const fs::path dir = env != nullptr ? fs::path(env) : fs::path("ckpt-divergence");
  fs::create_directories(dir);
  return (dir / (tag + ".txt")).string();
}

struct RunArtifacts {
  sim::SimResult result;
  std::vector<std::string> trace_lines;
  bool ledger_ok = false;
};

/// One seeded chaos scenario: 8-node cluster, SWIM jobs, LiPS policy with
/// the LP solver under fault injection, and a storm of machine crashes,
/// CPU slowdowns, and store losses. Everything derives from `seed`.
RunArtifacts run_scenario(std::uint64_t seed,
                          const ckpt::CheckpointDir* checkpoint_dir,
                          const ckpt::Snapshot* restore_from) {
  const cluster::Cluster c = cluster::make_ec2_cluster(8, 0.5, 2);
  Rng rng(seed);
  workload::SwimParams sp;
  sp.n_jobs = 10;
  sp.duration_s = 2500.0;
  const workload::SwimWorkload sw = workload::make_swim_workload(sp, c, rng);

  sim::FaultStormParams fp;
  fp.mtbf_s = 4000.0;
  fp.mttr_s = 400.0;
  fp.slowdown_rate = 1.5;
  fp.slowdown_factor = 4.0;
  fp.slowdown_window_s = 600.0;
  fp.store_loss_rate = 0.3;
  fp.horizon_s = 5000.0;
  fp.seed = seed;

  lp::SolverFaultConfig sfc;
  sfc.nan_probability = 0.15;
  sfc.basis_corruption_probability = 0.15;
  sfc.seed = seed;
  lp::SolverFaultInjector injector(sfc);

  core::LipsPolicyOptions lo;
  lo.epoch_s = 300.0;
  lo.model.solver_options.fault_injector = &injector;
  core::LipsPolicy policy(lo);

  obs::CostLedger ledger;
  sim::SimConfig cfg;
  cfg.hdfs_replication = 1;
  cfg.task_timeout_s = 1200.0;
  cfg.record_trace = true;
  cfg.faults = sim::make_fault_storm(fp, c.machine_count(), c.store_count());
  cfg.obs.ledger = &ledger;
  cfg.checkpoint_dir = checkpoint_dir;
  cfg.checkpoint_every_epochs = 1;
  cfg.checkpoint_label = "chaos:seed=" + std::to_string(seed);
  cfg.restore_from = restore_from;

  RunArtifacts out;
  out.result = sim::simulate(c, sw.workload, policy, cfg);
  out.trace_lines = sim::render_trace_lines(out.result);
  out.ledger_ok = ledger.reconcile(sim::billed_totals(out.result)).ok;
  return out;
}

/// Fork a child that runs the scenario with checkpointing and SIGKILL it
/// once `kill_after_snapshots` files exist (or let it finish if it is
/// faster). Returns true if the child was actually killed mid-run.
bool run_and_kill_child(std::uint64_t seed, const std::string& dir_path,
                        std::size_t kill_after_snapshots) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: the run that "crashes". Raw _exit on completion — gtest
    // teardown must not run twice.
    const ckpt::CheckpointDir dir(dir_path);
    (void)run_scenario(seed, &dir, nullptr);
    _exit(0);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  const ckpt::CheckpointDir watcher(dir_path);
  bool killed = false;
  for (;;) {
    int status = 0;
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) break;  // finished before we pulled the trigger
    if (watcher.list().size() >= kill_after_snapshots) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return killed;
}

void expect_bit_identical(std::uint64_t seed, const RunArtifacts& baseline,
                          const RunArtifacts& resumed) {
  EXPECT_EQ(resumed.result.schedule_digest, baseline.result.schedule_digest)
      << "seed " << seed;
  EXPECT_EQ(resumed.result.total_cost_mc, baseline.result.total_cost_mc)
      << "seed " << seed;
  EXPECT_EQ(resumed.result.makespan_s, baseline.result.makespan_s)
      << "seed " << seed;
  EXPECT_EQ(resumed.result.tasks_completed, baseline.result.tasks_completed)
      << "seed " << seed;
  EXPECT_EQ(resumed.result.tasks_lost, baseline.result.tasks_lost)
      << "seed " << seed;
  EXPECT_TRUE(resumed.ledger_ok) << "seed " << seed;
  const ckpt::DivergenceReport rep =
      ckpt::diff_event_logs(baseline.trace_lines, resumed.trace_lines);
  if (!rep.identical) {
    const std::string path =
        divergence_report_path("seed" + std::to_string(seed));
    std::ofstream out(path);
    ckpt::write_divergence_report(rep, out);
    ADD_FAILURE() << "seed " << seed << ": trace diverged at event "
                  << rep.first_mismatch << "; report written to " << path;
  }
}

TEST(CkptChaos, KillNineThenResumeIsBitIdenticalAcrossSeedStorms) {
  std::size_t killed_mid_run = 0;
  std::size_t resumed_runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // Uninterrupted ground truth (no checkpointing side effects needed —
    // snapshot writes must never affect behaviour anyway, which the
    // in-process suite already pins).
    const RunArtifacts baseline = run_scenario(seed, nullptr, nullptr);
    ASSERT_TRUE(baseline.ledger_ok) << "seed " << seed;

    const std::string dir_path =
        scratch_dir("kill9_seed" + std::to_string(seed));
    // Vary the kill point with the seed so early, mid, and late crashes
    // all occur across the sweep.
    const bool killed =
        run_and_kill_child(seed, dir_path, /*kill_after=*/1 + seed % 4);
    killed_mid_run += killed ? 1 : 0;

    // Recover exactly as an operator restart would: newest good snapshot
    // wins; a crash must never leave a torn `ckpt-*.lips` (atomic rename),
    // so nothing may be skipped.
    const ckpt::CheckpointDir dir(dir_path);
    std::vector<ckpt::CheckpointDir::Skipped> skipped;
    const std::optional<ckpt::Snapshot> snap = dir.load_latest(&skipped);
    EXPECT_TRUE(skipped.empty())
        << "seed " << seed << ": SIGKILL left a torn snapshot: "
        << (skipped.empty() ? "" : skipped[0].reason);
    ASSERT_TRUE(snap.has_value()) << "seed " << seed << ": no snapshot";

    const RunArtifacts resumed = run_scenario(seed, nullptr, &*snap);
    EXPECT_TRUE(resumed.result.restored);
    resumed_runs += resumed.result.restored ? 1 : 0;
    expect_bit_identical(seed, baseline, resumed);
  }
  EXPECT_EQ(resumed_runs, 10u);
  // Not asserted (scheduling-dependent), but the sweep is only interesting
  // if most children actually died mid-run.
  std::cout << "[ckpt-chaos] " << killed_mid_run
            << "/10 children SIGKILLed mid-run, " << resumed_runs
            << "/10 resumed bit-identically\n";
}

TEST(CkptChaos, RepeatedCrashResumeCrashConverges) {
  // Crash → resume → crash again → resume again: sequence numbers continue,
  // retention prunes, and the final resume still matches ground truth.
  const std::uint64_t seed = 21;
  const RunArtifacts baseline = run_scenario(seed, nullptr, nullptr);
  const std::string dir_path = scratch_dir("double_crash");

  (void)run_and_kill_child(seed, dir_path, 1);
  const ckpt::CheckpointDir dir(dir_path);
  const std::optional<ckpt::Snapshot> first = dir.load_latest();
  ASSERT_TRUE(first.has_value());

  // Second leg: resume from the first crash, checkpoint onward, and kill
  // again once it has written past the first crash's sequence.
  const std::uint64_t resume_seq = first->meta.sequence;
  const pid_t pid = fork();
  if (pid == 0) {
    const ckpt::CheckpointDir child_dir(dir_path);
    const std::optional<ckpt::Snapshot> snap = child_dir.load_latest();
    if (!snap.has_value()) _exit(3);
    (void)run_scenario(seed, &child_dir, &*snap);
    _exit(0);
  }
  ASSERT_GT(pid, 0);
  for (;;) {
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) break;
    const std::optional<std::uint64_t> latest = dir.latest_sequence();
    if (latest.has_value() && *latest > resume_seq) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<ckpt::CheckpointDir::Skipped> skipped;
  const std::optional<ckpt::Snapshot> snap = dir.load_latest(&skipped);
  EXPECT_TRUE(skipped.empty());
  ASSERT_TRUE(snap.has_value());
  EXPECT_GT(snap->meta.sequence, resume_seq)
      << "second leg never advanced the snapshot sequence";
  const RunArtifacts resumed = run_scenario(seed, nullptr, &*snap);
  EXPECT_TRUE(resumed.result.restored);
  expect_bit_identical(seed, baseline, resumed);
}

}  // namespace
}  // namespace lips
