// Tests for the CPLEX-LP-format writer (src/lp/lp_writer).
#include <gtest/gtest.h>

#include <sstream>

#include "core/lp_models.hpp"
#include "lp/lp_writer.hpp"
#include "lp/model.hpp"

namespace lips::lp {
namespace {

TEST(LpWriter, BasicStructure) {
  LpModel m;
  m.add_variable(0.0, 1.0, 2.5, "portion");
  m.add_variable(0.0, kInf, -1.0);
  m.add_constraint(std::vector<Entry>{{0, 1.0}, {1, 2.0}}, Sense::LessEqual,
                   4.0);
  m.add_constraint(std::vector<Entry>{{0, 1.0}}, Sense::GreaterEqual, 0.5);
  m.add_constraint(std::vector<Entry>{{1, 3.0}}, Sense::Equal, 6.0);
  std::ostringstream os;
  write_lp_format(m, os);
  const std::string s = os.str();

  EXPECT_NE(s.find("Minimize"), std::string::npos);
  EXPECT_NE(s.find("Subject To"), std::string::npos);
  EXPECT_NE(s.find("Bounds"), std::string::npos);
  EXPECT_NE(s.find("End"), std::string::npos);
  // Objective: 2.5 x0 - 1 x1.
  EXPECT_NE(s.find("2.5 x0"), std::string::npos);
  EXPECT_NE(s.find("- 1 x1"), std::string::npos);
  // Senses.
  EXPECT_NE(s.find("<= 4"), std::string::npos);
  EXPECT_NE(s.find(">= 0.5"), std::string::npos);
  EXPECT_NE(s.find("= 6"), std::string::npos);
  // Bounds: x0 boxed, x1 only lower-bounded.
  EXPECT_NE(s.find("0 <= x0 <= 1"), std::string::npos);
  EXPECT_NE(s.find("x1 >= 0"), std::string::npos);
  // Name comment survives.
  EXPECT_NE(s.find("x0 = portion"), std::string::npos);
}

TEST(LpWriter, FreeVariableAndNegativeBounds) {
  LpModel m;
  m.add_variable(-kInf, kInf, 1.0);
  m.add_variable(-kInf, 3.0, 0.0);
  m.add_constraint(std::vector<Entry>{{0, 1.0}, {1, 1.0}}, Sense::Equal, 0.0);
  std::ostringstream os;
  write_lp_format(m, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("x0 free"), std::string::npos);
  EXPECT_NE(s.find("-inf <= x1 <= 3"), std::string::npos);
}

TEST(LpWriter, EmptyObjectiveEmitsPlaceholder) {
  LpModel m;
  m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint(std::vector<Entry>{{0, 1.0}}, Sense::LessEqual, 1.0);
  std::ostringstream os;
  write_lp_format(m, os);
  EXPECT_NE(os.str().find("obj: 0 x0"), std::string::npos);
}

TEST(LpWriter, SchedulingModelExportsCompletely) {
  // Build a real co-scheduling model through the scheduler path and dump a
  // comparable hand-built LP: the export must mention every variable index
  // and every constraint id (smoke-level completeness on a nontrivial LP).
  LpModel m;
  for (int j = 0; j < 12; ++j) m.add_variable(0.0, 1.0, 0.5 + j);
  for (int i = 0; i < 6; ++i) {
    std::vector<Entry> es;
    for (int j = 0; j < 12; ++j)
      if ((i + j) % 3 == 0) es.push_back({static_cast<std::size_t>(j), 1.0});
    m.add_constraint(es, Sense::LessEqual, 2.0);
  }
  std::ostringstream os;
  write_lp_format(m, os);
  const std::string s = os.str();
  for (int j = 0; j < 12; ++j) {
    EXPECT_NE(s.find("x" + std::to_string(j)), std::string::npos) << j;
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(s.find("c" + std::to_string(i) + ":"), std::string::npos) << i;
  }
}

}  // namespace
}  // namespace lips::lp
