// Unit and property tests for the LP substrate (src/lp).
//
// The two simplex implementations are independent; the property tests here
// generate random feasible/contrived models and require that both solvers
// agree on status and optimal objective, and that every claimed optimum is
// primal-feasible under LpModel::max_violation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/solver.hpp"

namespace lips::lp {
namespace {

std::vector<Entry> row(std::initializer_list<Entry> es) { return {es}; }

// -------------------------------------------------------------- builder ---

TEST(LpModel, AddVariableValidation) {
  LpModel m;
  EXPECT_EQ(m.add_variable(0, 1, 2.0), 0u);
  EXPECT_EQ(m.add_variable(-kInf, kInf, 0.0), 1u);
  EXPECT_EQ(m.num_variables(), 2u);
  EXPECT_THROW(m.add_variable(2, 1, 0.0), PreconditionError);
  EXPECT_THROW(m.add_variable(0, 1, kInf), PreconditionError);
  EXPECT_THROW(m.add_variable(kInf, kInf, 0.0), PreconditionError);
}

TEST(LpModel, ConstraintNormalization) {
  LpModel m;
  m.add_variable(0, kInf, 1.0);
  m.add_variable(0, kInf, 1.0);
  // Duplicated variable entries are merged; zero coefficients dropped.
  const auto es =
      row({{1, 2.0}, {0, 1.0}, {1, 3.0}, {0, -1.0}});
  m.add_constraint(es, Sense::LessEqual, 4.0);
  const Constraint& c = m.constraint(0);
  ASSERT_EQ(c.entries.size(), 1u);  // var 0 merged to 0 and dropped
  EXPECT_EQ(c.entries[0].var, 1u);
  EXPECT_DOUBLE_EQ(c.entries[0].coeff, 5.0);
}

TEST(LpModel, ConstraintValidation) {
  LpModel m;
  m.add_variable(0, 1, 0.0);
  const auto bad_var = row({{5, 1.0}});
  EXPECT_THROW(m.add_constraint(bad_var, Sense::Equal, 0.0), PreconditionError);
  const auto ok = row({{0, 1.0}});
  EXPECT_THROW(m.add_constraint(ok, Sense::Equal, kInf), PreconditionError);
}

TEST(LpModel, ObjectiveAndViolation) {
  LpModel m;
  m.add_variable(0, 10, 2.0);
  m.add_variable(0, 10, -1.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::LessEqual, 5.0);
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(m.objective_value(x), 2.0);
  EXPECT_DOUBLE_EQ(m.max_violation(x), 2.0);  // 7 <= 5 violated by 2
  const std::vector<double> y{1.0, 2.0};
  EXPECT_DOUBLE_EQ(m.max_violation(y), 0.0);
}

// --------------------------------------------------- solver correctness ---

class BothSolvers : public ::testing::TestWithParam<SolverKind> {
 protected:
  [[nodiscard]] LpSolution solve(const LpModel& m) const {
    return make_solver(GetParam())->solve(m);
  }
};

INSTANTIATE_TEST_SUITE_P(Solvers, BothSolvers,
                         ::testing::Values(SolverKind::DenseSimplex,
                                           SolverKind::RevisedSimplex),
                         [](const auto& info) {
                           return info.param == SolverKind::DenseSimplex
                                      ? "Dense"
                                      : "Revised";
                         });

TEST_P(BothSolvers, TextbookTwoVariable) {
  // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  → minimize negation.
  // Optimum x=2, y=6, objective -36.
  LpModel m;
  m.add_variable(0, kInf, -3.0, "x");
  m.add_variable(0, kInf, -5.0, "y");
  m.add_constraint(row({{0, 1.0}}), Sense::LessEqual, 4.0);
  m.add_constraint(row({{1, 2.0}}), Sense::LessEqual, 12.0);
  m.add_constraint(row({{0, 3.0}, {1, 2.0}}), Sense::LessEqual, 18.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -36.0, 1e-6);
  EXPECT_NEAR(s.values[0], 2.0, 1e-6);
  EXPECT_NEAR(s.values[1], 6.0, 1e-6);
}

TEST_P(BothSolvers, IterationBudgetExhaustionReturnsIterationLimit) {
  // The textbook model needs at least two pivots (both variables enter the
  // basis at the optimum). A budget of one iteration must come back as
  // IterationLimit cleanly — no hang, no assert — and the identical model
  // must still solve to optimality under the automatic budget.
  LpModel m;
  m.add_variable(0, kInf, -3.0, "x");
  m.add_variable(0, kInf, -5.0, "y");
  m.add_constraint(row({{0, 1.0}}), Sense::LessEqual, 4.0);
  m.add_constraint(row({{1, 2.0}}), Sense::LessEqual, 12.0);
  m.add_constraint(row({{0, 3.0}, {1, 2.0}}), Sense::LessEqual, 18.0);
  SolverOptions tight;
  tight.max_iterations = 1;
  const LpSolution limited = make_solver(GetParam(), tight)->solve(m);
  EXPECT_EQ(limited.status, SolveStatus::IterationLimit);
  EXPECT_FALSE(limited.optimal());
  const LpSolution full = make_solver(GetParam())->solve(m);
  ASSERT_TRUE(full.optimal());
  EXPECT_NEAR(full.objective, -36.0, 1e-6);
}

TEST_P(BothSolvers, EqualityConstraints) {
  // min x+2y  s.t. x+y = 10, x-y = 2 → x=6, y=4, obj 14.
  LpModel m;
  m.add_variable(0, kInf, 1.0);
  m.add_variable(0, kInf, 2.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::Equal, 10.0);
  m.add_constraint(row({{0, 1.0}, {1, -1.0}}), Sense::Equal, 2.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 14.0, 1e-6);
  EXPECT_NEAR(s.values[0], 6.0, 1e-6);
  EXPECT_NEAR(s.values[1], 4.0, 1e-6);
}

TEST_P(BothSolvers, GreaterEqualConstraints) {
  // Diet-style: min 2x+3y s.t. x+y >= 4, x+3y >= 6 → x=3,y=1, obj 9.
  LpModel m;
  m.add_variable(0, kInf, 2.0);
  m.add_variable(0, kInf, 3.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::GreaterEqual, 4.0);
  m.add_constraint(row({{0, 1.0}, {1, 3.0}}), Sense::GreaterEqual, 6.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 9.0, 1e-6);
}

TEST_P(BothSolvers, UpperBoundedVariables) {
  // min -x-y s.t. x+y <= 1.5, 0<=x<=1, 0<=y<=1 → obj -1.5.
  LpModel m;
  m.add_variable(0, 1, -1.0);
  m.add_variable(0, 1, -1.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::LessEqual, 1.5);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -1.5, 1e-6);
  EXPECT_LE(m.max_violation(s.values), 1e-6);
}

TEST_P(BothSolvers, NonzeroLowerBounds) {
  // min x+y s.t. x+y >= 1, x >= 2, y >= 3 via bounds → obj 5.
  LpModel m;
  m.add_variable(2, kInf, 1.0);
  m.add_variable(3, kInf, 1.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::GreaterEqual, 1.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST_P(BothSolvers, NegativeLowerBounds) {
  // min x s.t. x >= -5 (bound), x + y = 0, y <= 3 → x=-3 at optimum.
  LpModel m;
  m.add_variable(-5, kInf, 1.0);
  m.add_variable(-kInf, 3, 0.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::Equal, 0.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -3.0, 1e-6);
}

TEST_P(BothSolvers, FreeVariable) {
  // min x + 2y, y free, x in [0,10], x + y >= 4, y >= x - 2 rewritten:
  //   -x + y >= -2. Optimum: y as small as possible on the segment...
  // Solve by hand: minimize x+2y over {x+y>=4, y>=x-2, 0<=x<=10}.
  // Corner candidates: intersection x+y=4 & y=x-2 → x=3,y=1 → obj 5.
  // x=10,y=-2+... check x=10: y>=8? from x+y>=4 y>=-6; from y>=x-2 y>=8 →
  // obj 10+16=26. x=0: y>=4 → obj 8. So optimum 5.
  LpModel m;
  m.add_variable(0, 10, 1.0);
  m.add_variable(-kInf, kInf, 2.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::GreaterEqual, 4.0);
  m.add_constraint(row({{0, -1.0}, {1, 1.0}}), Sense::GreaterEqual, -2.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-6);
}

TEST_P(BothSolvers, InfeasibleDetected) {
  LpModel m;
  m.add_variable(0, 1, 1.0);
  m.add_constraint(row({{0, 1.0}}), Sense::GreaterEqual, 2.0);
  EXPECT_EQ(solve(m).status, SolveStatus::Infeasible);
}

TEST_P(BothSolvers, InfeasibleEqualitySystem) {
  LpModel m;
  m.add_variable(0, kInf, 0.0);
  m.add_variable(0, kInf, 0.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::Equal, 1.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::Equal, 2.0);
  EXPECT_EQ(solve(m).status, SolveStatus::Infeasible);
}

TEST_P(BothSolvers, UnboundedDetected) {
  LpModel m;
  m.add_variable(0, kInf, -1.0);
  m.add_constraint(row({{0, -1.0}}), Sense::LessEqual, 0.0);  // x >= 0, vacuous
  EXPECT_EQ(solve(m).status, SolveStatus::Unbounded);
}

TEST_P(BothSolvers, BoundsOnlyModel) {
  LpModel m;
  m.add_variable(1, 5, 3.0);   // wants lower → 1
  m.add_variable(1, 5, -2.0);  // wants upper → 5
  m.add_variable(-4, 9, 0.0);  // indifferent
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 1.0, 1e-9);
  EXPECT_NEAR(s.values[1], 5.0, 1e-9);
  EXPECT_NEAR(s.objective, -7.0, 1e-9);
}

TEST_P(BothSolvers, BoundsOnlyUnbounded) {
  LpModel m;
  m.add_variable(0, kInf, -1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::Unbounded);
}

TEST_P(BothSolvers, DegenerateModelDoesNotCycle) {
  // Classic Beale cycling example (minimization form); anti-cycling must
  // terminate with the optimum -0.05.
  LpModel m;
  m.add_variable(0, kInf, -0.75);
  m.add_variable(0, kInf, 150.0);
  m.add_variable(0, kInf, -0.02);
  m.add_variable(0, kInf, 6.0);
  m.add_constraint(row({{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}),
                   Sense::LessEqual, 0.0);
  m.add_constraint(row({{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}),
                   Sense::LessEqual, 0.0);
  m.add_constraint(row({{2, 1.0}}), Sense::LessEqual, 1.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST_P(BothSolvers, RedundantConstraintsHandled) {
  LpModel m;
  m.add_variable(0, kInf, 1.0);
  m.add_variable(0, kInf, 1.0);
  // Same equality twice — phase 1 leaves a redundant basic artificial.
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::Equal, 4.0);
  m.add_constraint(row({{0, 1.0}, {1, 1.0}}), Sense::Equal, 4.0);
  m.add_constraint(row({{0, 2.0}, {1, 2.0}}), Sense::Equal, 8.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST_P(BothSolvers, NegativeRhsRows) {
  // min x+y s.t. -x - y <= -4  (i.e. x+y >= 4).
  LpModel m;
  m.add_variable(0, kInf, 1.0);
  m.add_variable(0, kInf, 1.0);
  m.add_constraint(row({{0, -1.0}, {1, -1.0}}), Sense::LessEqual, -4.0);
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST_P(BothSolvers, TransportationProblem) {
  // 2 supplies (10, 15) × 3 demands (8, 7, 10); costs:
  //   s0: 4 6 9 / s1: 5 3 8  → known optimum 4*8+6*2+3*7+8*8 = 32+12+21+64=129?
  // Compute properly below via assertion on feasibility + objective equal
  // across solvers and <= a known feasible plan.
  LpModel m;
  const double cost[2][3] = {{4, 6, 9}, {5, 3, 8}};
  const double supply[2] = {10, 15};
  const double demand[3] = {8, 7, 10};
  std::size_t v[2][3];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) v[i][j] = m.add_variable(0, kInf, cost[i][j]);
  for (int i = 0; i < 2; ++i) {
    std::vector<Entry> es;
    for (int j = 0; j < 3; ++j) es.push_back({v[i][j], 1.0});
    m.add_constraint(es, Sense::LessEqual, supply[i]);
  }
  for (int j = 0; j < 3; ++j) {
    std::vector<Entry> es;
    for (int i = 0; i < 2; ++i) es.push_back({v[i][j], 1.0});
    m.add_constraint(es, Sense::GreaterEqual, demand[j]);
  }
  const LpSolution s = solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_LE(m.max_violation(s.values), 1e-6);
  // Feasible reference plan: x00=8, x02=2, x11=7, x12=8 → 32+18+21+64=135.
  EXPECT_LE(s.objective, 135.0 + 1e-6);
  // Optimal is exactly 129 (x00=8 (32), x01=0, x02=2(18) → better to send
  // s1's cheap 8s: x12=10 (80) + x11=7 (21) + x00=8 (32) uses s1=17 > 15.
  // LP optimum validated by cross-solver agreement test below.
}

// ------------------------------------------------------- property tests ---

// Random dense-ish LPs constructed to be feasible by design: pick a random
// point x0 in the box, then set each row's rhs so x0 satisfies it with
// slack. Both solvers must agree on the objective value.
TEST(LpCrossCheck, RandomFeasibleBoundedModels) {
  Rng rng(2024);
  DenseSimplexSolver dense;
  RevisedSimplexSolver revised;  // lips-lint: allow(direct-solver-ctor)
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.index(6);
    const std::size_t k = 1 + rng.index(6);
    LpModel m;
    std::vector<double> x0;
    for (std::size_t j = 0; j < n; ++j) {
      const double lo = rng.uniform(-5, 5);
      const double hi = lo + rng.uniform(0.1, 10);
      m.add_variable(lo, hi, rng.uniform(-3, 3));
      x0.push_back(rng.uniform(lo, hi));
    }
    for (std::size_t i = 0; i < k; ++i) {
      std::vector<Entry> es;
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (rng.bernoulli(0.7)) {
          const double c = rng.uniform(-2, 2);
          es.push_back({j, c});
          lhs += c * x0[j];
        }
      }
      if (es.empty()) continue;
      const int sense = static_cast<int>(rng.index(3));
      if (sense == 0) {
        m.add_constraint(es, Sense::LessEqual, lhs + rng.uniform(0, 2));
      } else if (sense == 1) {
        m.add_constraint(es, Sense::GreaterEqual, lhs - rng.uniform(0, 2));
      } else {
        m.add_constraint(es, Sense::Equal, lhs);
      }
    }
    const LpSolution a = dense.solve(m);
    const LpSolution b = revised.solve(m);
    ASSERT_TRUE(a.optimal()) << "trial " << trial;
    ASSERT_TRUE(b.optimal()) << "trial " << trial;
    EXPECT_NEAR(a.objective, b.objective, 1e-5 * (1 + std::fabs(a.objective)))
        << "trial " << trial;
    EXPECT_LE(m.max_violation(a.values), 1e-6) << "trial " << trial;
    EXPECT_LE(m.max_violation(b.values), 1e-6) << "trial " << trial;
  }
}

// Both solvers must agree on infeasibility.
TEST(LpCrossCheck, RandomInfeasibleModels) {
  Rng rng(777);
  DenseSimplexSolver dense;
  RevisedSimplexSolver revised;  // lips-lint: allow(direct-solver-ctor)
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.index(4);
    LpModel m;
    for (std::size_t j = 0; j < n; ++j) m.add_variable(0, 1, rng.uniform(-1, 1));
    // Sum of all vars >= n + 1 is impossible within [0,1]^n.
    std::vector<Entry> es;
    for (std::size_t j = 0; j < n; ++j) es.push_back({j, 1.0});
    m.add_constraint(es, Sense::GreaterEqual, static_cast<double>(n) + 1.0);
    EXPECT_EQ(dense.solve(m).status, SolveStatus::Infeasible);
    EXPECT_EQ(revised.solve(m).status, SolveStatus::Infeasible);
  }
}

// Weak-duality-style sanity: the optimum of a minimization can never exceed
// the objective at any feasible point we know (x0 from construction).
TEST(LpCrossCheck, OptimumDominatesKnownFeasiblePoint) {
  Rng rng(31337);
  RevisedSimplexSolver solver;  // lips-lint: allow(direct-solver-ctor)
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.index(8);
    LpModel m;
    std::vector<double> x0;
    for (std::size_t j = 0; j < n; ++j) {
      m.add_variable(0, 1, rng.uniform(-5, 5));
      x0.push_back(rng.uniform01());
    }
    for (std::size_t i = 0; i < 4; ++i) {
      std::vector<Entry> es;
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double c = rng.uniform(0, 2);
        es.push_back({j, c});
        lhs += c * x0[j];
      }
      m.add_constraint(es, Sense::LessEqual, lhs);
    }
    const LpSolution s = solver.solve(m);
    ASSERT_TRUE(s.optimal());
    EXPECT_LE(s.objective, m.objective_value(x0) + 1e-6);
  }
}

// Scaling invariance: multiplying the objective by a positive scalar scales
// the optimum and preserves an optimal solution set member's feasibility.
TEST(LpCrossCheck, ObjectiveScalingInvariance) {
  Rng rng(99);
  RevisedSimplexSolver solver;  // lips-lint: allow(direct-solver-ctor)
  LpModel m;
  LpModel m_scaled;
  const std::size_t n = 6;
  for (std::size_t j = 0; j < n; ++j) {
    const double c = rng.uniform(-2, 2);
    m.add_variable(0, 1, c);
    m_scaled.add_variable(0, 1, 7.5 * c);
  }
  std::vector<Entry> es;
  for (std::size_t j = 0; j < n; ++j) es.push_back({j, 1.0});
  m.add_constraint(es, Sense::LessEqual, 2.5);
  m_scaled.add_constraint(es, Sense::LessEqual, 2.5);
  const LpSolution a = solver.solve(m);
  const LpSolution b = solver.solve(m_scaled);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(b.objective, 7.5 * a.objective, 1e-6);
}

// Iteration-limit status is reported rather than looping forever.
TEST(LpSolverOptions, IterationLimitReported) {
  SolverOptions opts;
  opts.max_iterations = 1;
  LpModel m;
  for (int j = 0; j < 10; ++j) m.add_variable(0, kInf, -1.0 - j);
  for (int i = 0; i < 10; ++i) {
    std::vector<Entry> es;
    for (int j = 0; j < 10; ++j)
      es.push_back({static_cast<std::size_t>(j), 1.0 + ((i + j) % 3)});
    m.add_constraint(es, Sense::LessEqual, 50.0);
  }
  DenseSimplexSolver dense(opts);
  EXPECT_EQ(dense.solve(m).status, SolveStatus::IterationLimit);
}

TEST(LpSolverFactory, MakesBothKinds) {
  EXPECT_NE(make_solver(SolverKind::DenseSimplex), nullptr);
  EXPECT_NE(make_solver(SolverKind::RevisedSimplex), nullptr);
  EXPECT_EQ(to_string(SolveStatus::Optimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::Infeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::Unbounded), "unbounded");
  EXPECT_EQ(to_string(SolveStatus::IterationLimit), "iteration-limit");
}

}  // namespace
}  // namespace lips::lp
// NOTE: appended duality tests live in their own namespace block below.

namespace lips::lp {
namespace {

// Strong duality and complementary slackness on random feasible models,
// using both solvers' dual extraction. For a bounded-variable LP,
//   c'x* = y'b + Σ_j d_j x*_j   (d_j the reduced cost; zero on basics),
// every nonzero dual implies a tight row, and every nonzero reduced cost
// implies the variable sits on the matching bound.
TEST(LpDuality, StrongDualityAndComplementarySlackness) {
  Rng rng(20260707);
  RevisedSimplexSolver solver;  // lips-lint: allow(direct-solver-ctor)
  DenseSimplexSolver dense;
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + rng.index(6);
    const std::size_t k = 1 + rng.index(5);
    LpModel m;
    std::vector<double> x0;
    for (std::size_t j = 0; j < n; ++j) {
      const double lo = rng.uniform(-4, 4);
      const double hi = lo + rng.uniform(0.5, 8);
      m.add_variable(lo, hi, rng.uniform(-3, 3));
      x0.push_back(rng.uniform(lo, hi));
    }
    for (std::size_t i = 0; i < k; ++i) {
      std::vector<Entry> es;
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double c = rng.uniform(-2, 2);
        es.push_back({j, c});
        lhs += c * x0[j];
      }
      const int sense = static_cast<int>(rng.index(3));
      if (sense == 0) {
        m.add_constraint(es, Sense::LessEqual, lhs + rng.uniform(0, 3));
      } else if (sense == 1) {
        m.add_constraint(es, Sense::GreaterEqual, lhs - rng.uniform(0, 3));
      } else {
        m.add_constraint(es, Sense::Equal, lhs);
      }
    }
    const LpSolution revised_sol = solver.solve(m);
    const LpSolution dense_sol = dense.solve(m);
    const struct {
      const LpSolution* s;
      const char* which;
    } runs[] = {{&revised_sol, "revised"}, {&dense_sol, "dense"}};
    for (const auto& run : runs) {
      const LpSolution& s = *run.s;
      ASSERT_TRUE(s.optimal()) << run.which << " trial " << trial;
      ASSERT_EQ(s.duals.size(), m.num_constraints()) << run.which;
      ASSERT_EQ(s.reduced_costs.size(), m.num_variables()) << run.which;

      // Strong duality identity.
      double dual_obj = 0.0;
      for (std::size_t i = 0; i < m.num_constraints(); ++i)
        dual_obj += s.duals[i] * m.constraint(i).rhs;
      for (std::size_t j = 0; j < n; ++j)
        dual_obj += s.reduced_costs[j] * s.values[j];
      EXPECT_NEAR(dual_obj, s.objective, 1e-5 * (1.0 + std::fabs(s.objective)))
          << run.which << " trial " << trial;

      // Dual sign conventions + slackness on rows.
      for (std::size_t i = 0; i < m.num_constraints(); ++i) {
        const Constraint& row = m.constraint(i);
        double lhs = 0.0;
        for (const Entry& e : row.entries) lhs += e.coeff * s.values[e.var];
        const double slack = row.rhs - lhs;
        if (row.sense == Sense::LessEqual) {
          EXPECT_LE(s.duals[i], 1e-6)
              << run.which << " trial " << trial << " row " << i;
          if (s.duals[i] < -1e-5) {
            EXPECT_NEAR(slack, 0.0, 1e-5)
                << run.which << " trial " << trial << " row " << i;
          }
        } else if (row.sense == Sense::GreaterEqual) {
          EXPECT_GE(s.duals[i], -1e-6)
              << run.which << " trial " << trial << " row " << i;
          if (s.duals[i] > 1e-5) {
            EXPECT_NEAR(slack, 0.0, 1e-5)
                << run.which << " trial " << trial << " row " << i;
          }
        }
      }

      // Reduced-cost slackness on variable bounds.
      for (std::size_t j = 0; j < n; ++j) {
        const Variable& v = m.variable(j);
        if (s.reduced_costs[j] > 1e-5) {
          EXPECT_NEAR(s.values[j], v.lower, 1e-5)
              << run.which << " trial " << trial << " var " << j;
        }
        if (s.reduced_costs[j] < -1e-5) {
          EXPECT_NEAR(s.values[j], v.upper, 1e-5)
              << run.which << " trial " << trial << " var " << j;
        }
      }
    }
  }
}

// The shadow price of a machine-capacity row predicts the objective change
// of relaxing it — the textbook sensitivity use of duals, exercised on a
// tiny scheduling-shaped LP.
TEST(LpDuality, ShadowPricePredictsRelaxation) {
  // min 1·x0 + 5·x1  s.t. x0 + x1 >= 10 (demand), x0 <= 4 (cheap capacity).
  LpModel m;
  m.add_variable(0, kInf, 1.0);
  m.add_variable(0, kInf, 5.0);
  m.add_constraint(std::vector<Entry>{{0, 1.0}, {1, 1.0}},
                   Sense::GreaterEqual, 10.0);
  m.add_constraint(std::vector<Entry>{{0, 1.0}}, Sense::LessEqual, 4.0);
  RevisedSimplexSolver solver;  // lips-lint: allow(direct-solver-ctor)
  const LpSolution s = solver.solve(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 4.0 * 1 + 6.0 * 5, 1e-6);
  // Capacity row dual: adding one cheap unit saves 5 - 1 = 4 → dual = -4.
  EXPECT_NEAR(s.duals[1], -4.0, 1e-6);
  // Nondegenerate optimum → both solvers must extract identical duals.
  DenseSimplexSolver dense;
  const LpSolution ds = dense.solve(m);
  ASSERT_TRUE(ds.optimal());
  EXPECT_NEAR(ds.duals[0], s.duals[0], 1e-6);
  EXPECT_NEAR(ds.duals[1], -4.0, 1e-6);
  EXPECT_NEAR(ds.reduced_costs[0], s.reduced_costs[0], 1e-6);
  EXPECT_NEAR(ds.reduced_costs[1], s.reduced_costs[1], 1e-6);

  LpModel relaxed;
  relaxed.add_variable(0, kInf, 1.0);
  relaxed.add_variable(0, kInf, 5.0);
  relaxed.add_constraint(std::vector<Entry>{{0, 1.0}, {1, 1.0}},
                         Sense::GreaterEqual, 10.0);
  relaxed.add_constraint(std::vector<Entry>{{0, 1.0}}, Sense::LessEqual, 5.0);
  const LpSolution r = solver.solve(relaxed);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.objective, s.objective + s.duals[1], 1e-6);
}

}  // namespace
}  // namespace lips::lp
