// End-to-end tests of the map+shuffle+reduce extension: spec expansion,
// dependency gating in the simulator, intermediate-data materialization,
// shuffle locality/cost, and LiPS scheduling of reduce stages.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lips_policy.hpp"
#include "sched/delay_scheduler.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sim/simulator.hpp"
#include "workload/mapreduce.hpp"

namespace lips {
namespace {

using workload::JobDag;
using workload::MapReduceJob;
using workload::MapReduceSpec;
using workload::Workload;

cluster::Cluster three_nodes(double p0 = 1.0, double p1 = 1.0,
                             double p2 = 1.0) {
  cluster::Cluster c;
  const ZoneId z0 = c.add_zone("z0");
  const ZoneId z1 = c.add_zone("z1");
  const double prices[] = {p0, p1, p2};
  const ZoneId zones[] = {z0, z0, z1};
  for (int i = 0; i < 3; ++i) {
    cluster::Machine m;
    m.name = "m" + std::to_string(i);
    m.zone = zones[i];
    m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(prices[i]);
    m.map_slots = 2;
    m.uptime_s = 1e9;
    const MachineId id = c.add_machine(std::move(m));
    cluster::DataStore s;
    s.name = "s" + std::to_string(i);
    s.zone = zones[i];
    s.capacity_mb = 1e9;
    s.colocated_machine = id.value();
    c.add_store(std::move(s));
  }
  c.finalize();
  return c;
}

// ---------------------------------------------------------------- spec ---

TEST(MapReduceSpecTest, ExpandsToTwoJobsAndIntermediate) {
  Workload w;
  const DataId in = w.add_data({"in", 640.0, StoreId{0}});
  JobDag dag(2);
  MapReduceSpec spec;
  spec.name = "wc";
  spec.input = in;
  spec.map_cpu_s_per_mb = 1.0;
  spec.map_tasks = 10;
  spec.reduce_tasks = 4;
  spec.shuffle_fraction = 0.5;
  spec.reduce_cpu_s_per_mb = 2.0;
  const MapReduceJob mr = workload::add_mapreduce_job(w, dag, spec);

  EXPECT_EQ(w.job_count(), 2u);
  ASSERT_TRUE(mr.reduce.has_value());
  ASSERT_TRUE(mr.intermediate.has_value());
  const workload::DataObject& inter = w.data(*mr.intermediate);
  EXPECT_TRUE(inter.is_intermediate());
  EXPECT_EQ(*inter.produced_by, mr.map.value());
  EXPECT_DOUBLE_EQ(inter.size_mb, 320.0);
  EXPECT_DOUBLE_EQ(w.job_cpu_ecu_s(*mr.reduce), 640.0);  // 320 MB × 2
  // The DAG edge gates reduce on map.
  ASSERT_EQ(dag.predecessors(*mr.reduce).size(), 1u);
  EXPECT_EQ(dag.predecessors(*mr.reduce)[0], mr.map.value());
}

TEST(MapReduceSpecTest, MapOnlyJob) {
  Workload w;
  const DataId in = w.add_data({"in", 64.0, StoreId{0}});
  JobDag dag(1);
  MapReduceSpec spec;
  spec.name = "grep";
  spec.input = in;
  spec.map_tasks = 1;
  spec.reduce_tasks = 0;
  const MapReduceJob mr = workload::add_mapreduce_job(w, dag, spec);
  EXPECT_FALSE(mr.reduce.has_value());
  EXPECT_EQ(w.job_count(), 1u);
  EXPECT_EQ(w.data_count(), 1u);
}

TEST(MapReduceSpecTest, Validation) {
  Workload w;
  const DataId in = w.add_data({"in", 64.0, StoreId{0}});
  JobDag dag(2);
  MapReduceSpec spec;
  spec.name = "bad";
  spec.input = DataId{9};
  EXPECT_THROW((void)workload::add_mapreduce_job(w, dag, spec),
               PreconditionError);
  spec.input = in;
  spec.reduce_tasks = 2;
  spec.shuffle_fraction = 0.0;  // reduce stage with no shuffle volume
  EXPECT_THROW((void)workload::add_mapreduce_job(w, dag, spec),
               PreconditionError);
  spec.shuffle_fraction = 1.5;
  EXPECT_THROW((void)workload::add_mapreduce_job(w, dag, spec),
               PreconditionError);
}

// ----------------------------------------------------------- simulation ---

struct Pipeline {
  Workload w;
  JobDag dag{2};
  MapReduceJob mr{JobId{0}, std::nullopt, std::nullopt};
};

Pipeline make_pipeline(double shuffle_fraction = 0.5) {
  Pipeline p;
  const DataId in = p.w.add_data({"in", 640.0, StoreId{0}});
  MapReduceSpec spec;
  spec.name = "wc";
  spec.input = in;
  spec.map_cpu_s_per_mb = 1.0;
  spec.map_tasks = 10;
  spec.reduce_tasks = 4;
  spec.shuffle_fraction = shuffle_fraction;
  spec.reduce_cpu_s_per_mb = 1.0;
  p.mr = workload::add_mapreduce_job(p.w, p.dag, spec);
  return p;
}

TEST(MapReduceSim, ReduceWaitsForMap) {
  const cluster::Cluster c = three_nodes();
  Pipeline p = make_pipeline();
  sched::FifoLocalityScheduler fifo;
  const sim::SimResult r = sim::simulate(c, p.w, fifo, {}, &p.dag);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_completed, 14u);
  // Reduce finishes strictly after map.
  EXPECT_GT(r.job_finish_s[p.mr.reduce->value()],
            r.job_finish_s[p.mr.map.value()]);
}

TEST(MapReduceSim, WithoutDagReducersStillWaitForPhysicalData) {
  // Even WITHOUT the dependency DAG, baseline schedulers cannot launch a
  // reduce task early: its intermediate object has zero presence anywhere
  // until the map stage materializes it, and locality-driven launch only
  // reads stores that actually hold data. The pipeline therefore still
  // executes in the right order — the DAG is about scheduling intent (and
  // required for LiPS' planning), not about physical safety.
  const cluster::Cluster c = three_nodes();
  Pipeline p = make_pipeline();
  sched::FifoLocalityScheduler fifo;
  const sim::SimResult r = sim::simulate(c, p.w, fifo);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.job_finish_s[p.mr.reduce->value()],
            r.job_finish_s[p.mr.map.value()]);
}

TEST(MapReduceSim, ShuffleReadsArePredominantlyMapLocal) {
  // Map work lands on the machines of zone z0 (data-local); the shuffle
  // output therefore materializes on their stores, and FIFO reducers read
  // it with high locality.
  const cluster::Cluster c = three_nodes();
  Pipeline p = make_pipeline();
  sched::FifoLocalityScheduler fifo;
  const sim::SimResult r = sim::simulate(c, p.w, fifo, {}, &p.dag);
  ASSERT_TRUE(r.completed);
  // All transfers happened inside zone z0 or machine-locally → no billed
  // cross-zone traffic beyond (possibly) a stray reducer on m2.
  EXPECT_LT(r.read_transfer_cost_mc,
            Bytes::mb(320.0) * c.ms_cost_mc_per_mb(MachineId{2}, StoreId{0}));
}

TEST(MapReduceSim, ShuffleVolumeScalesCost) {
  // Doubling the shuffle fraction doubles the reduce stage's input and
  // therefore its CPU-time demand.
  const cluster::Cluster c = three_nodes();
  Pipeline small = make_pipeline(0.25);
  Pipeline big = make_pipeline(0.5);
  EXPECT_NEAR(big.w.job_cpu_ecu_s(*big.mr.reduce),
              2.0 * small.w.job_cpu_ecu_s(*small.mr.reduce), 1e-9);
}

TEST(MapReduceSim, LipsSchedulesPipelineEndToEnd) {
  // Heterogeneous prices: LiPS should run the CPU on the cheap node and
  // still complete the gated pipeline.
  const cluster::Cluster c = three_nodes(5.0, 5.0, 1.0);
  Pipeline p = make_pipeline();
  core::LipsPolicyOptions lo;
  lo.epoch_s = 500.0;
  core::LipsPolicy lips(lo);
  const sim::SimResult r = sim::simulate(c, p.w, lips, {}, &p.dag);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_completed, 14u);
  EXPECT_EQ(lips.lp_failures(), 0u);
  // The cheap machine (m2) should carry the bulk of the CPU work.
  EXPECT_GT(r.machines[2].cpu_work_ecu_s,
            r.machines[0].cpu_work_ecu_s + r.machines[1].cpu_work_ecu_s);
}

TEST(MapReduceSim, ChainedPipelinesRunInOrder) {
  // Two MapReduce jobs where the second's input is the first's shuffle
  // output region (modeled as the same object reread), chained via the DAG.
  cluster::Cluster c = three_nodes();
  Workload w;
  const DataId in = w.add_data({"in", 320.0, StoreId{0}});
  JobDag dag(3);  // map1, reduce1, map2 (stage2 is map-only)
  MapReduceSpec first;
  first.name = "stage1";
  first.input = in;
  first.map_tasks = 5;
  first.reduce_tasks = 2;
  first.shuffle_fraction = 0.5;
  const MapReduceJob mr1 = workload::add_mapreduce_job(w, dag, first);
  MapReduceSpec second;
  second.name = "stage2";
  second.input = *mr1.intermediate;  // consumes stage1's shuffle data
  second.map_tasks = 4;
  second.reduce_tasks = 0;
  const MapReduceJob mr2 = workload::add_mapreduce_job(w, dag, second);
  dag.add_dependency(*mr1.reduce, mr2.map);

  sched::FifoLocalityScheduler fifo;
  const sim::SimResult r = sim::simulate(c, w, fifo, {}, &dag);
  ASSERT_TRUE(r.completed);
  EXPECT_LT(r.job_finish_s[mr1.map.value()],
            r.job_finish_s[mr1.reduce->value()]);
  EXPECT_LT(r.job_finish_s[mr1.reduce->value()],
            r.job_finish_s[mr2.map.value()] + 1e-9);
}

TEST(MapReduceSim, DependencyValidation) {
  const cluster::Cluster c = three_nodes();
  Pipeline p = make_pipeline();
  // A DAG smaller than the workload cannot cover every job.
  JobDag too_small(1);
  sched::FifoLocalityScheduler fifo;
  EXPECT_THROW(sim::simulate(c, p.w, fifo, {}, &too_small),
               PreconditionError);
  // A generously-sized DAG is fine (extra ids are jobless).
  JobDag roomy(7);
  roomy.add_dependency(p.mr.map, *p.mr.reduce);
  const sim::SimResult ok = sim::simulate(c, p.w, fifo, {}, &roomy);
  EXPECT_TRUE(ok.completed);
  JobDag cyclic(2);
  cyclic.add_dependency(JobId{0}, JobId{1});
  cyclic.add_dependency(JobId{1}, JobId{0});
  EXPECT_THROW(sim::simulate(c, p.w, fifo, {}, &cyclic), PreconditionError);
}

}  // namespace
}  // namespace lips
