// Tests for src/obs: metrics-registry bucket math pinned against hand
// computation, exporter output shape, tracer ring semantics, a Chrome-trace
// JSON round-trip through a real parse with monotone timestamps, and —
// the subsystem's correctness bar — bit-identical cost-ledger
// reconciliation against the simulator's billing accumulators on seeded
// faulty + straggler runs.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "core/lips_policy.hpp"
#include "obs/export.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "workload/swim.hpp"

namespace lips {
namespace {

// ------------------------------------------------------ mini JSON parser ---
// Just enough JSON to round-trip the exporters' output; throws on anything
// malformed so a broken exporter fails loudly.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  [[nodiscard]] const JsonObject& obj() const {
    return std::get<JsonObject>(v);
  }
  [[nodiscard]] const JsonArray& arr() const { return std::get<JsonArray>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] double num() const { return std::get<double>(v); }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    const auto it = obj().find(key);
    if (it == obj().end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return obj().count(key) != 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    ws();
    if (i_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(i_) + ": " + why);
  }
  void ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])) != 0)
      ++i_;
  }
  char peek() {
    if (i_ >= s_.size()) fail("unexpected end");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }
  bool consume(const std::string& word) {
    if (s_.compare(i_, word.size(), word) != 0) return false;
    i_ += word.size();
    return true;
  }

  JsonValue value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue{string()};
    if (consume("null")) return JsonValue{nullptr};
    if (consume("true")) return JsonValue{true};
    if (consume("false")) return JsonValue{false};
    return number();
  }

  JsonValue object() {
    expect('{');
    JsonObject out;
    ws();
    if (peek() == '}') {
      ++i_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      out.emplace(std::move(key), value());
      ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(out)};
    }
  }

  JsonValue array() {
    expect('[');
    JsonArray out;
    ws();
    if (peek() == ']') {
      ++i_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      out.push_back(value());
      ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(out)};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++i_;
      if (c == '"') return out;
      if (c == '\\') {
        const char e = peek();
        ++i_;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) fail("bad \\u escape");
            out += static_cast<char>(
                std::strtol(s_.substr(i_, 4).c_str(), nullptr, 16));
            i_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' ||
            s_[i_] == 'E'))
      ++i_;
    if (i_ == start) fail("expected number");
    return JsonValue{std::strtod(s_.substr(start, i_ - start).c_str(),
                                 nullptr)};
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// ------------------------------------------------------- metrics registry ---

TEST(Metrics, HistogramBucketMathPinnedByHand) {
  obs::MetricRegistry reg;
  obs::Histogram& h = reg.histogram("lips_test_seconds", {1.0, 5.0, 10.0});
  for (const double v : {0.5, 1.0, 1.5, 5.0, 7.5, 100.0}) h.observe(v);
  // `le` semantics: value lands in the first bucket whose bound >= value.
  //   le=1   : 0.5, 1.0          → 2
  //   le=5   : 1.5, 5.0          → 2
  //   le=10  : 7.5               → 1
  //   le=+Inf: 100               → 1
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 115.5);
  // Below every bound still lands in the first bucket.
  h.observe(-3.0);
  EXPECT_EQ(h.bucket_count(0), 3u);
}

TEST(Metrics, HandlesAreStableAndKindsAreChecked) {
  obs::MetricRegistry reg;
  obs::Counter& c1 = reg.counter("lips_events_total", {{"kind", "a"}});
  obs::Counter& c2 = reg.counter("lips_events_total", {{"kind", "a"}});
  EXPECT_EQ(&c1, &c2);  // re-registration returns the same instrument
  c1.inc();
  c1.inc(2.5);
  EXPECT_DOUBLE_EQ(c2.value(), 3.5);

  reg.gauge("lips_level").set(7.0);
  EXPECT_DOUBLE_EQ(reg.gauge("lips_level").value(), 7.0);

  // Same name, different kind → precondition error.
  EXPECT_THROW((void)reg.gauge("lips_events_total"), PreconditionError);
  // Histogram re-registration must agree on bounds.
  (void)reg.histogram("lips_h", {1.0, 2.0});
  EXPECT_THROW((void)reg.histogram("lips_h", {1.0, 3.0}), PreconditionError);
  // Invalid Prometheus name.
  EXPECT_THROW((void)reg.counter("bad name"), PreconditionError);

  EXPECT_EQ(reg.series_count(), 3u);
}

TEST(Metrics, SnapshotIsSortedAndExportsHaveShape) {
  obs::MetricRegistry reg;
  reg.counter("lips_z_total").inc(4.0);
  reg.counter("lips_a_total", {{"zone", "b"}}).inc();
  reg.counter("lips_a_total", {{"zone", "a"}}).inc(2.0);
  reg.histogram("lips_h_seconds", {1.0, 10.0}).observe(3.0);

  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "lips_a_total");
  EXPECT_EQ(samples[0].labels[0].second, "a");
  EXPECT_EQ(samples[1].labels[0].second, "b");
  EXPECT_EQ(samples[2].name, "lips_h_seconds");
  EXPECT_EQ(samples[3].name, "lips_z_total");

  std::ostringstream prom;
  obs::write_prometheus(samples, prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE lips_a_total counter"), std::string::npos);
  EXPECT_NE(text.find("lips_a_total{zone=\"a\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lips_h_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lips_h_seconds_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("lips_h_seconds_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lips_h_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lips_h_seconds_count 1"), std::string::npos);
  // The TYPE line appears once per name, not once per labelled series.
  EXPECT_EQ(text.find("# TYPE lips_a_total"),
            text.rfind("# TYPE lips_a_total"));

  // The JSON export parses and recovers exact values.
  std::ostringstream js;
  obs::write_metrics_json(samples, js);
  const JsonValue parsed = JsonParser(js.str()).parse();
  ASSERT_EQ(parsed.arr().size(), 4u);
  EXPECT_EQ(parsed.arr()[0].at("name").str(), "lips_a_total");
  EXPECT_EQ(parsed.arr()[0].at("value").num(), 2.0);
  EXPECT_EQ(parsed.arr()[2].at("counts").arr().size(), 3u);
  EXPECT_EQ(parsed.arr()[2].at("sum").num(), 3.0);
}

// Byte-exact golden exposition text. Prometheus output is part of the
// deterministic-artifact contract (two runs of a deterministic simulation
// must produce byte-identical dumps), so this pins the *entire* rendering —
// TYPE lines, label quoting, cumulative le buckets, double formatting —
// rather than spot-checking substrings. A restored registry (checkpoint
// path, DESIGN.md §11) must render the very same bytes.
TEST(Metrics, PrometheusExportMatchesGoldenText) {
  obs::MetricRegistry reg;
  reg.counter("lips_tasks_total", {{"sched", "lips"}}).inc(3.0);
  reg.gauge("lips_queue_depth").set(2.5);
  auto& h = reg.histogram("lips_epoch_seconds", {0.5, 2.0});
  h.observe(0.25);
  h.observe(1.5);
  h.observe(99.0);

  const std::string golden =
      "# TYPE lips_epoch_seconds histogram\n"
      "lips_epoch_seconds_bucket{le=\"0.5\"} 1\n"
      "lips_epoch_seconds_bucket{le=\"2\"} 2\n"
      "lips_epoch_seconds_bucket{le=\"+Inf\"} 3\n"
      "lips_epoch_seconds_sum 100.75\n"
      "lips_epoch_seconds_count 3\n"
      "# TYPE lips_queue_depth gauge\n"
      "lips_queue_depth 2.5\n"
      "# TYPE lips_tasks_total counter\n"
      "lips_tasks_total{sched=\"lips\"} 3\n";

  std::ostringstream prom;
  obs::write_prometheus(reg.snapshot(), prom);
  EXPECT_EQ(prom.str(), golden);

  obs::MetricRegistry restored;
  restored.restore(reg.snapshot());
  std::ostringstream again;
  obs::write_prometheus(restored.snapshot(), again);
  EXPECT_EQ(again.str(), golden);
}

// ----------------------------------------------------------------- tracer ---

TEST(Trace, RingOverwritesOldestAndKeepsCounts) {
  obs::Tracer t(4);
  for (int i = 0; i < 6; ++i) t.instant("tick", "test", "i", double(i));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 6u);
  EXPECT_EQ(t.overwritten(), 2u);
  std::vector<double> seen;
  std::uint64_t last_ts = 0;
  t.for_each([&](const obs::TraceRecord& rec) {
    EXPECT_GE(rec.ts_us, last_ts);
    last_ts = rec.ts_us;
    seen.push_back(rec.arg_val[0]);
  });
  // The two oldest records (0 and 1) were overwritten.
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_DOUBLE_EQ(seen.front(), 2.0);
  EXPECT_DOUBLE_EQ(seen.back(), 5.0);

  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer t(8);
  t.set_enabled(false);
  t.begin("a", "test");
  t.instant("b", "test");
  t.end("a", "test");
  { const obs::Span span(&t, "c", "test"); }
  { const obs::Span null_span(nullptr, "d", "test"); }  // null-safe
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(Trace, ChromeTraceRoundTripsWithMonotoneTimestamps) {
  obs::Tracer t(64);
  {
    const obs::Span outer(&t, "outer", "test");
    t.instant("marker", "test", "epoch", 3.0, "cost_mc", 12.5);
    const obs::Span inner(&t, "inner", "test");
  }
  std::ostringstream os;
  obs::write_chrome_trace(t, os);

  const JsonValue doc = JsonParser(os.str()).parse();
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  const JsonArray& events = doc.at("traceEvents").arr();
  ASSERT_EQ(events.size(), 5u);  // B, i, B, E, E

  double last_ts = -1.0;
  int depth = 0;
  for (const JsonValue& e : events) {
    const std::string& ph = e.at("ph").str();
    const double ts = e.at("ts").num();
    EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts;
    if (ph == "B") ++depth;
    if (ph == "E") {
      --depth;
      EXPECT_GE(depth, 0) << "E without matching B";
    }
    if (ph == "i") {
      EXPECT_EQ(e.at("s").str(), "t");
    }
  }
  EXPECT_EQ(depth, 0) << "unbalanced spans";

  EXPECT_EQ(events[0].at("name").str(), "outer");
  EXPECT_EQ(events[1].at("name").str(), "marker");
  EXPECT_EQ(events[1].at("args").at("epoch").num(), 3.0);
  EXPECT_EQ(events[1].at("args").at("cost_mc").num(), 12.5);
  EXPECT_EQ(events[2].at("name").str(), "inner");
  EXPECT_EQ(events[2].at("ph").str(), "B");
  EXPECT_EQ(events[3].at("name").str(), "inner");
  EXPECT_EQ(events[3].at("ph").str(), "E");
  EXPECT_EQ(events[4].at("name").str(), "outer");
}

// ------------------------------------------------------------ cost ledger ---

TEST(Ledger, CellsAttributeByEpochJobMachineAndCategory) {
  obs::CostLedger ledger;
  ledger.post(obs::CostMeter::Execution, Millicents::mc(10.0), 3, 1);
  ledger.set_current_epoch(2);
  ledger.post(obs::CostMeter::Execution, Millicents::mc(5.0), 3, 1);
  ledger.post(obs::CostMeter::ReadTransfer, Millicents::mc(2.0), 3, 1);
  ledger.post(obs::CostMeter::IngestReplication, Millicents::mc(7.0));
  ledger.post(obs::CostMeter::PlacementTransfer, Millicents::mc(4.0));

  EXPECT_EQ(ledger.posts(), 5u);
  EXPECT_EQ(ledger.meter_total(obs::CostMeter::Execution),
            Millicents::mc(15.0));
  // Two meters fold into InitialPlacement; the category is reporting-only.
  EXPECT_EQ(ledger.category_total(obs::CostCategory::InitialPlacement),
            Millicents::mc(11.0));
  EXPECT_EQ(ledger.category_total(obs::CostCategory::Cpu),
            Millicents::mc(15.0));

  const auto& cells = ledger.cells();
  // (epoch 0, job 3, machine 1, Cpu) and (epoch 2, ...) are distinct cells.
  const obs::CostLedger::CellKey k0{0, 3, 1, obs::CostCategory::Cpu};
  const obs::CostLedger::CellKey k2{2, 3, 1, obs::CostCategory::Cpu};
  ASSERT_EQ(cells.count(k0), 1u);
  ASSERT_EQ(cells.count(k2), 1u);
  EXPECT_EQ(cells.at(k0), Millicents::mc(10.0));
  EXPECT_EQ(cells.at(k2), Millicents::mc(5.0));
  // Unattributed posts use the kNone sentinel.
  const obs::CostLedger::CellKey ingest{2, obs::CostLedger::kNone,
                                        obs::CostLedger::kNone,
                                        obs::CostCategory::InitialPlacement};
  EXPECT_EQ(cells.at(ingest), Millicents::mc(11.0));

  // billed_total uses the simulator's association order.
  const Millicents expected =
      ((ledger.meter_total(obs::CostMeter::Execution) +
        ledger.meter_total(obs::CostMeter::ReadTransfer)) +
       ledger.meter_total(obs::CostMeter::PlacementTransfer)) +
      ledger.meter_total(obs::CostMeter::IngestReplication);
  EXPECT_EQ(ledger.billed_total(), expected);
}

TEST(Ledger, ReconcileFlagsPerMeterMismatch) {
  obs::CostLedger ledger;
  ledger.post(obs::CostMeter::Execution, Millicents::mc(10.0));
  obs::CostLedger::BilledTotals billed{};  // all zero
  const auto rec = ledger.reconcile(billed);
  EXPECT_FALSE(rec.ok);
  EXPECT_EQ(rec.delta[static_cast<std::size_t>(obs::CostMeter::Execution)],
            Millicents::mc(10.0));
  EXPECT_EQ(rec.delta[static_cast<std::size_t>(obs::CostMeter::Wasted)],
            Millicents::zero());

  billed.execution = Millicents::mc(10.0);
  EXPECT_TRUE(ledger.reconcile(billed).ok);
}

// --------------------------------------------- simulator reconciliation ---

struct ObsRun {
  obs::MetricRegistry metrics;
  obs::Tracer tracer{1 << 18};
  obs::CostLedger ledger;
  sim::SimResult result;
};

sim::FaultPlan storm(std::size_t machines, std::size_t stores) {
  sim::FaultStormParams p;
  p.mtbf_s = 4000.0;   // crashes
  p.mttr_s = 400.0;
  p.slowdown_rate = 2.0;  // stragglers
  p.slowdown_factor = 4.0;
  p.slowdown_window_s = 600.0;
  p.store_loss_rate = 0.3;
  p.horizon_s = 6000.0;
  p.seed = 17;
  return sim::make_fault_storm(p, machines, stores);
}

/// Bitwise per-meter reconciliation against the run's SimResult.
void expect_bitwise_reconciled(const ObsRun& run) {
  const sim::SimResult& r = run.result;
  const obs::CostLedger& led = run.ledger;
  EXPECT_EQ(led.meter_total(obs::CostMeter::Execution), r.execution_cost_mc);
  EXPECT_EQ(led.meter_total(obs::CostMeter::ReadTransfer),
            r.read_transfer_cost_mc);
  EXPECT_EQ(led.meter_total(obs::CostMeter::PlacementTransfer),
            r.placement_transfer_cost_mc);
  EXPECT_EQ(led.meter_total(obs::CostMeter::IngestReplication),
            r.ingest_replication_cost_mc);
  EXPECT_EQ(led.meter_total(obs::CostMeter::Wasted), r.wasted_cost_mc);
  EXPECT_EQ(led.meter_total(obs::CostMeter::Speculation),
            r.speculation_cost_mc);
  EXPECT_EQ(led.billed_total(), r.total_cost_mc);
  const auto rec = run.ledger.reconcile(sim::billed_totals(r));
  EXPECT_TRUE(rec.ok);
  for (const Millicents& d : rec.delta) EXPECT_EQ(d, Millicents::zero());
}

TEST(ObsIntegration, LedgerReconcilesBitIdenticallyOnFaultyStragglerLipsRun) {
  const cluster::Cluster c = cluster::make_ec2_cluster(8, 0.5, 2);
  Rng rng(2013);
  workload::SwimParams sp;
  sp.n_jobs = 25;
  sp.duration_s = 4000.0;
  const workload::SwimWorkload sw = workload::make_swim_workload(sp, c, rng);

  core::LipsPolicyOptions lo;
  lo.epoch_s = 400.0;
  core::LipsPolicy lips(lo);

  ObsRun run;
  sim::SimConfig cfg;
  cfg.hdfs_replication = 1;
  cfg.task_timeout_s = 1200.0;
  cfg.faults = storm(c.machine_count(), c.store_count());
  cfg.obs = obs::Observer{&run.metrics, &run.tracer, &run.ledger};
  run.result = sim::simulate(c, sw.workload, lips, cfg);

  // Sanity: the storm actually bit, and the instrumentation actually fired.
  EXPECT_GT(run.result.machines_lost + run.result.machine_slowdowns, 0u);
  EXPECT_GT(run.ledger.posts(), 0u);
  EXPECT_GT(run.tracer.total_recorded(), 0u);
  EXPECT_GT(run.metrics.series_count(), 0u);

  expect_bitwise_reconciled(run);
  // The fake-node carry meter reconciles against the policy, bit for bit.
  EXPECT_EQ(run.ledger.meter_total(obs::CostMeter::FakeNodeCarry),
            lips.fake_node_carry_mc());
  // Replans were counted: every LP solve happens inside a replan call, but
  // replans with an empty pending queue return before solving.
  EXPECT_GE(run.metrics.counter("lips_policy_replans_total").value(),
            static_cast<double>(lips.lp_solves()));
  EXPECT_GT(lips.lp_solves(), 0u);
}

TEST(ObsIntegration, LedgerReconcilesWithSpeculationAndReplication) {
  const cluster::Cluster c = cluster::make_ec2_cluster(6, 0.5, 2);
  Rng rng(7);
  workload::SwimParams sp;
  sp.n_jobs = 20;
  sp.duration_s = 2000.0;
  const workload::SwimWorkload sw = workload::make_swim_workload(sp, c, rng);

  sched::FifoLocalityScheduler fifo;
  ObsRun run;
  sim::SimConfig cfg;
  cfg.hdfs_replication = 3;  // exercises the IngestReplication meter
  cfg.speculative_execution = true;
  cfg.speculation.mode = sim::SpeculationConfig::Mode::Naive;
  cfg.task_timeout_s = 600.0;
  cfg.faults = storm(c.machine_count(), c.store_count());
  cfg.obs = obs::Observer{&run.metrics, &run.tracer, &run.ledger};
  run.result = sim::simulate(c, sw.workload, fifo, cfg);

  EXPECT_GT(run.result.ingest_replication_cost_mc, Millicents::zero());
  expect_bitwise_reconciled(run);
  // A policy-free run posts no fake-node carry.
  EXPECT_EQ(run.ledger.meter_total(obs::CostMeter::FakeNodeCarry),
            Millicents::zero());
}

TEST(ObsIntegration, TraceFromSimRunRoundTripsThroughJsonParse) {
  const cluster::Cluster c = cluster::make_ec2_cluster(4, 0.5, 2);
  Rng rng(3);
  workload::SwimParams sp;
  sp.n_jobs = 8;
  sp.duration_s = 1000.0;
  const workload::SwimWorkload sw = workload::make_swim_workload(sp, c, rng);

  core::LipsPolicy lips;
  ObsRun run;
  sim::SimConfig cfg;
  cfg.hdfs_replication = 1;
  cfg.obs = obs::Observer{nullptr, &run.tracer, nullptr};
  run.result = sim::simulate(c, sw.workload, lips, cfg);
  ASSERT_GT(run.tracer.size(), 0u);
  EXPECT_EQ(run.tracer.overwritten(), 0u);

  std::ostringstream os;
  obs::write_chrome_trace(run.tracer, os);
  const JsonValue doc = JsonParser(os.str()).parse();
  const JsonArray& events = doc.at("traceEvents").arr();
  ASSERT_EQ(events.size(), run.tracer.size());
  double last_ts = -1.0;
  bool saw_replan = false;
  bool saw_lp = false;
  for (const JsonValue& e : events) {
    const double ts = e.at("ts").num();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    saw_replan = saw_replan || e.at("name").str() == "lips-replan";
    saw_lp = saw_lp || e.at("name").str() == "lp-solve";
  }
  EXPECT_TRUE(saw_replan);
  EXPECT_TRUE(saw_lp);
}

TEST(ObsIntegration, LedgerJsonExportParsesAndMatchesTotals) {
  obs::CostLedger ledger;
  ledger.post(obs::CostMeter::Execution, Millicents::mc(12.5), 0, 1);
  ledger.set_current_epoch(1);
  ledger.post(obs::CostMeter::Wasted, Millicents::mc(0.25), 2, 0);

  std::ostringstream os;
  obs::write_ledger_json(ledger, os);
  const JsonValue doc = JsonParser(os.str()).parse();
  EXPECT_EQ(doc.at("posts").num(), 2.0);
  EXPECT_EQ(doc.at("meter_totals_mc").at("execution").num(), 12.5);
  EXPECT_EQ(doc.at("category_totals_mc").at("wasted_fault").num(), 0.25);
  const JsonArray& cells = doc.at("cells").arr();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].at("epoch").num(), 0.0);
  EXPECT_EQ(cells[0].at("job").num(), 0.0);
  EXPECT_EQ(cells[0].at("machine").num(), 1.0);
  EXPECT_EQ(cells[0].at("category").str(), "cpu");
  EXPECT_EQ(cells[0].at("mc").num(), 12.5);
}

}  // namespace
}  // namespace lips
