// Tests for src/ckpt — the crash-consistent checkpoint/restore subsystem
// (DESIGN.md §11). Layered like the subsystem itself: codec primitives
// round-trip bit patterns (NaN included), the snapshot container detects
// every single-byte flip and every truncation, the on-disk store falls back
// past corrupt files, the write-fault injector manufactures detectable
// corruption deterministically, and — the contract the whole subsystem
// exists for — a simulation resumed from *any* snapshot finishes with the
// uninterrupted run's schedule digest, trace, and bit-identical ledger.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "ckpt/digest.hpp"
#include "ckpt/divergence.hpp"
#include "ckpt/snapshot.hpp"
#include "ckpt/store.hpp"
#include "ckpt/write_faults.hpp"
#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/lips_policy.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "sched/delay_scheduler.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "workload/swim.hpp"

namespace lips {
namespace {

namespace fs = std::filesystem;

/// Fresh (empty) per-test scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& tag) {
  const fs::path p = fs::path(::testing::TempDir()) / ("lips_ckpt_" + tag);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

// ------------------------------------------------------------- codec ------

TEST(CkptCodec, PrimitivesRoundTripBitExactly) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double neg_zero = -0.0;
  ckpt::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.size(SIZE_MAX);
  w.boolean(true);
  w.boolean(false);
  w.f64(nan);
  w.f64(neg_zero);
  w.f64(0x1.fffffffffffffp+1023);  // DBL_MAX
  w.str(std::string("embedded\0nul", 12));
  w.str("");

  ckpt::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.size(), SIZE_MAX);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  // NaN != NaN, so compare the bit patterns.
  const double got_nan = r.f64();
  std::uint64_t want_bits = 0;
  std::uint64_t got_bits = 0;
  std::memcpy(&want_bits, &nan, sizeof(want_bits));
  std::memcpy(&got_bits, &got_nan, sizeof(got_bits));
  EXPECT_EQ(got_bits, want_bits);
  EXPECT_TRUE(std::signbit(r.f64()));
  EXPECT_EQ(r.f64(), 0x1.fffffffffffffp+1023);
  EXPECT_EQ(r.str(), std::string("embedded\0nul", 12));
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CkptCodec, ReaderThrowsOnUnderrunAndJunkBoolean) {
  const std::uint8_t three_bytes[] = {1, 2, 3};
  ckpt::Reader r(three_bytes, sizeof(three_bytes));
  EXPECT_THROW((void)r.u32(), ckpt::SnapshotError);

  const std::uint8_t junk_bool[] = {2};
  ckpt::Reader rb(junk_bool, sizeof(junk_bool));
  EXPECT_THROW((void)rb.boolean(), ckpt::SnapshotError);

  // A string whose declared length exceeds the remaining bytes must throw,
  // not read out of bounds.
  ckpt::Writer w;
  w.size(1000);
  w.bytes("abc", 3);
  ckpt::Reader rs(w.buffer());
  EXPECT_THROW((void)rs.str(), ckpt::SnapshotError);
}

TEST(CkptDigest, Fnv1a64MatchesReferenceAndOrderMatters) {
  // Reference vectors for FNV-1a 64 (Noll's published test suite).
  ckpt::Fnv1a64 d;
  EXPECT_EQ(d.digest(), 0xCBF29CE484222325ULL);  // empty = offset basis
  d.bytes("a", 1);
  EXPECT_EQ(d.digest(), 0xAF63DC4C8601EC8CULL);
  d.reset();
  d.bytes("foobar", 6);
  EXPECT_EQ(d.digest(), 0x85944171F73967E8ULL);

  ckpt::Fnv1a64 ab;
  ckpt::Fnv1a64 ba;
  ab.u64(1);
  ab.u64(2);
  ba.u64(2);
  ba.u64(1);
  EXPECT_NE(ab.digest(), ba.digest());

  // reset(h) resumes a stream mid-flight — the simulator restores its
  // launch digest this way on checkpoint restore.
  ckpt::Fnv1a64 full;
  full.f64(3.25);
  full.str("x");
  ckpt::Fnv1a64 resumed;
  ckpt::Fnv1a64 half;
  half.f64(3.25);
  resumed.reset(half.digest());
  resumed.str("x");
  EXPECT_EQ(resumed.digest(), full.digest());
}

// ---------------------------------------------------------- snapshot ------

ckpt::Snapshot sample_snapshot() {
  ckpt::Snapshot s;
  s.meta.git_sha = "deadbeef";
  s.meta.compiler = "GNU 12";
  s.meta.build_type = "Release";
  s.meta.label = "lips:seed=7";
  s.meta.sim_time_s = 1234.5;
  s.meta.epoch = 9;
  s.meta.sequence = 42;
  s.payload = {0x00, 0x01, 0xFE, 0xFF, 0x10, 0x20};
  return s;
}

TEST(CkptSnapshot, EncodeDecodeRoundTrips) {
  const ckpt::Snapshot s = sample_snapshot();
  const std::vector<std::uint8_t> bytes = ckpt::encode_snapshot(s);
  const ckpt::Snapshot back = ckpt::decode_snapshot(bytes);
  EXPECT_EQ(back.meta.git_sha, s.meta.git_sha);
  EXPECT_EQ(back.meta.compiler, s.meta.compiler);
  EXPECT_EQ(back.meta.build_type, s.meta.build_type);
  EXPECT_EQ(back.meta.label, s.meta.label);
  EXPECT_EQ(back.meta.sim_time_s, s.meta.sim_time_s);
  EXPECT_EQ(back.meta.epoch, s.meta.epoch);
  EXPECT_EQ(back.meta.sequence, s.meta.sequence);
  EXPECT_EQ(back.payload, s.payload);
}

TEST(CkptSnapshot, EverySingleByteFlipIsDetected) {
  const std::vector<std::uint8_t> bytes =
      ckpt::encode_snapshot(sample_snapshot());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const std::uint8_t mask : {0x01, 0x80}) {
      std::vector<std::uint8_t> bad = bytes;
      bad[i] ^= mask;
      EXPECT_THROW((void)ckpt::decode_snapshot(bad), ckpt::SnapshotError)
          << "flip of byte " << i << " mask " << int{mask} << " not detected";
    }
  }
}

TEST(CkptSnapshot, EveryTruncationIsDetected) {
  const std::vector<std::uint8_t> bytes =
      ckpt::encode_snapshot(sample_snapshot());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW((void)ckpt::decode_snapshot(bytes.data(), n),
                 ckpt::SnapshotError)
        << "prefix of " << n << " bytes decoded";
  }
}

TEST(CkptSnapshot, UnsupportedVersionIsRejectedEvenWithValidCrc) {
  // Patch the version field (bytes 8..12, little-endian, right after the
  // magic) and re-seal the CRC so only the version check can object.
  std::vector<std::uint8_t> bytes = ckpt::encode_snapshot(sample_snapshot());
  bytes[8] = static_cast<std::uint8_t>(ckpt::kSnapshotVersion + 1);
  const std::uint32_t crc = ckpt::crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  try {
    (void)ckpt::decode_snapshot(bytes);
    FAIL() << "future-version snapshot decoded";
  } catch (const ckpt::SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------- store ------

TEST(CkptStore, WriteLoadRoundTripsAndNumbersSequences) {
  const ckpt::CheckpointDir dir(scratch_dir("store_roundtrip"));
  EXPECT_FALSE(dir.latest_sequence().has_value());
  EXPECT_FALSE(dir.load_latest().has_value());

  ckpt::Snapshot s = sample_snapshot();
  s.meta.sequence = 1;
  const std::string p1 = dir.write(s);
  EXPECT_TRUE(fs::exists(p1));
  s.meta.sequence = 2;
  s.meta.epoch = 10;
  s.payload.push_back(0x77);
  dir.write(s);

  ASSERT_TRUE(dir.latest_sequence().has_value());
  EXPECT_EQ(*dir.latest_sequence(), 2u);
  std::vector<ckpt::CheckpointDir::Skipped> skipped;
  const std::optional<ckpt::Snapshot> latest = dir.load_latest(&skipped);
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(skipped.empty());
  EXPECT_EQ(latest->meta.sequence, 2u);
  EXPECT_EQ(latest->meta.epoch, 10u);
  EXPECT_EQ(latest->payload, s.payload);
}

TEST(CkptStore, RetentionKeepsOnlyNewestFiles) {
  const ckpt::CheckpointDir dir(scratch_dir("store_retention"),
                                /*keep=*/2);
  ckpt::Snapshot s = sample_snapshot();
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    s.meta.sequence = seq;
    dir.write(s);
  }
  const std::vector<std::string> files = dir.list();
  EXPECT_EQ(files.size(), 2u);
  EXPECT_EQ(*dir.latest_sequence(), 5u);
  ASSERT_TRUE(dir.load_latest().has_value());
  EXPECT_EQ(dir.load_latest()->meta.sequence, 5u);
}

TEST(CkptStore, FallsBackPastCorruptNewestSnapshot) {
  const ckpt::CheckpointDir dir(scratch_dir("store_fallback"));
  ckpt::Snapshot s = sample_snapshot();
  s.meta.sequence = 1;
  dir.write(s);
  s.meta.sequence = 2;
  const std::string newest = dir.write(s);

  // Bit-flip the newest file in the middle, as a bad disk would.
  std::vector<std::uint8_t> bytes = read_file(newest);
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(newest, bytes);

  std::vector<ckpt::CheckpointDir::Skipped> skipped;
  const std::optional<ckpt::Snapshot> got = dir.load_latest(&skipped);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->meta.sequence, 1u);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0].path, newest);
  EXPECT_FALSE(skipped[0].reason.empty());
}

TEST(CkptStore, IgnoresTmpAndForeignFiles) {
  const std::string path = scratch_dir("store_foreign");
  const ckpt::CheckpointDir dir(path);
  ckpt::Snapshot s = sample_snapshot();
  s.meta.sequence = 3;
  dir.write(s);
  // A torn write that never reached rename(2), plus unrelated clutter.
  write_file(path + "/.ckpt-99.tmp", {1, 2, 3});
  write_file(path + "/notes.txt", {'h', 'i'});

  EXPECT_EQ(dir.list().size(), 1u);
  EXPECT_EQ(*dir.latest_sequence(), 3u);
  std::vector<ckpt::CheckpointDir::Skipped> skipped;
  ASSERT_TRUE(dir.load_latest(&skipped).has_value());
  EXPECT_TRUE(skipped.empty());
}

// ------------------------------------------------------ write faults ------

TEST(CkptWriteFaults, SpecParsesAndRejectsJunk) {
  const ckpt::SnapshotFaultConfig c =
      ckpt::parse_snapshot_fault_spec("torn=0.5,trunc=0.25,corrupt=0.1,seed=9");
  EXPECT_EQ(c.torn_probability, 0.5);
  EXPECT_EQ(c.truncate_probability, 0.25);
  EXPECT_EQ(c.corrupt_probability, 0.1);
  EXPECT_EQ(c.seed, 9u);
  EXPECT_THROW((void)ckpt::parse_snapshot_fault_spec("torn=0.1,bogus=1"),
               PreconditionError);
  EXPECT_THROW((void)ckpt::parse_snapshot_fault_spec("torn=0.1,torn=0.2"),
               PreconditionError);
}

TEST(CkptWriteFaults, InjectionIsDeterministicAndAlwaysDetected) {
  ckpt::SnapshotFaultConfig cfg;
  cfg.torn_probability = 0.4;
  cfg.truncate_probability = 0.3;
  cfg.corrupt_probability = 0.3;
  cfg.seed = 17;

  const std::vector<std::uint8_t> clean =
      ckpt::encode_snapshot(sample_snapshot());
  ckpt::SnapshotFaultInjector a(cfg);
  ckpt::SnapshotFaultInjector b(cfg);
  std::size_t perturbed = 0;
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> ba = clean;
    std::vector<std::uint8_t> bb = clean;
    a.apply(ba);
    b.apply(bb);
    EXPECT_EQ(ba, bb) << "same seed, snapshot " << i << " diverged";
    if (ba != clean) {
      ++perturbed;
      // Every manufactured corruption must be *detectable* — that is the
      // point of the CRC-first decode.
      EXPECT_THROW((void)ckpt::decode_snapshot(ba), ckpt::SnapshotError);
    }
  }
  EXPECT_GT(perturbed, 0u);
  EXPECT_EQ(a.stats().snapshots_seen, 50u);
  // total_injected() can exceed the perturbed-snapshot count: independent
  // fault kinds (torn + truncate + corrupt) may all fire on one snapshot.
  EXPECT_GE(a.stats().total_injected(), perturbed);
}

TEST(CkptWriteFaults, StoreFallsBackPastInjectedCorruption) {
  const ckpt::CheckpointDir dir(scratch_dir("store_injected"));
  ckpt::Snapshot s = sample_snapshot();
  s.meta.sequence = 1;
  dir.write(s);  // good

  ckpt::SnapshotFaultConfig cfg;
  cfg.torn_probability = 1.0;  // every write is torn
  ckpt::SnapshotFaultInjector inj(cfg);
  s.meta.sequence = 2;
  dir.write(s, &inj);
  EXPECT_EQ(inj.stats().torn, 1u);

  std::vector<ckpt::CheckpointDir::Skipped> skipped;
  const std::optional<ckpt::Snapshot> got = dir.load_latest(&skipped);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->meta.sequence, 1u);
  EXPECT_EQ(skipped.size(), 1u);
}

// -------------------------------------------------------- divergence ------

TEST(CkptDivergence, IdenticalLogsProduceCleanReport) {
  const std::vector<std::string> log = {"a", "b", "c"};
  const ckpt::DivergenceReport rep = ckpt::diff_event_logs(log, log);
  EXPECT_TRUE(rep.identical);
  EXPECT_EQ(rep.first_mismatch, SIZE_MAX);
  EXPECT_TRUE(rep.mismatches.empty());
  EXPECT_EQ(rep.baseline_digest, rep.resumed_digest);
}

TEST(CkptDivergence, MismatchAndLengthSkewAreReported) {
  const std::vector<std::string> baseline = {"a", "b", "c"};
  const std::vector<std::string> resumed = {"a", "X", "c", "extra"};
  const ckpt::DivergenceReport rep = ckpt::diff_event_logs(baseline, resumed);
  EXPECT_FALSE(rep.identical);
  EXPECT_EQ(rep.first_mismatch, 1u);
  EXPECT_EQ(rep.baseline_events, 3u);
  EXPECT_EQ(rep.resumed_events, 4u);
  ASSERT_FALSE(rep.mismatches.empty());
  EXPECT_NE(rep.baseline_digest, rep.resumed_digest);

  std::ostringstream os;
  ckpt::write_divergence_report(rep, os);
  EXPECT_NE(os.str().find("X"), std::string::npos);
}

// ------------------------------------------- RNG stream round-trip --------
// Satellite of DESIGN.md §11: every RNG stream in a snapshot must resume
// exactly, including mid-sequence (xoshiro state, not the seed, is saved).

TEST(CkptRng, StateRoundTripsMidSequence) {
  Rng rng(12345);
  for (int i = 0; i < 1000; ++i) (void)rng.next();
  (void)rng.uniform01();  // leave the stream at an "odd" point
  const std::array<std::uint64_t, 4> state = rng.state();

  std::vector<std::uint64_t> want_raw;
  std::vector<double> want_u01;
  for (int i = 0; i < 100; ++i) {
    want_raw.push_back(rng.next());
    want_u01.push_back(rng.uniform01());
  }

  Rng resumed(999);  // different seed: only the state transplant matters
  resumed.set_state(state);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(resumed.next(), want_raw[static_cast<std::size_t>(i)]);
    EXPECT_EQ(resumed.uniform01(), want_u01[static_cast<std::size_t>(i)]);
  }
}

TEST(CkptRng, AllZeroStateIsRejected) {
  Rng rng(1);
  EXPECT_THROW(rng.set_state({0, 0, 0, 0}), PreconditionError);
}

// --------------------------------- simulator checkpoint/restore ----------

struct RunArtifacts {
  sim::SimResult result;
  std::vector<std::string> trace_lines;
  bool ledger_ok = false;
};

struct RunSetup {
  cluster::Cluster cluster;
  workload::Workload workload;
};

/// Deterministic small-but-nontrivial scenario: 6-node EC2-style cluster,
/// SWIM-style jobs, LiPS policy with a sub-horizon epoch so several
/// checkpoints land mid-run.
RunSetup make_setup(std::uint64_t seed) {
  RunSetup s;
  s.cluster = cluster::make_ec2_cluster(6, 0.5, 2);
  Rng rng(seed);
  workload::SwimParams sp;
  sp.n_jobs = 8;
  sp.duration_s = 2000.0;
  s.workload = workload::make_swim_workload(sp, s.cluster, rng).workload;
  return s;
}

RunArtifacts run_lips(std::uint64_t seed, sim::SimConfig cfg) {
  const RunSetup s = make_setup(seed);
  core::LipsPolicyOptions lo;
  lo.epoch_s = 300.0;
  core::LipsPolicy policy(lo);
  obs::CostLedger ledger;
  cfg.hdfs_replication = 1;
  cfg.task_timeout_s = 1200.0;
  cfg.record_trace = true;
  cfg.obs.ledger = &ledger;
  RunArtifacts out;
  out.result = sim::simulate(s.cluster, s.workload, policy, cfg);
  out.trace_lines = sim::render_trace_lines(out.result);
  out.ledger_ok = ledger.reconcile(sim::billed_totals(out.result)).ok;
  return out;
}

void expect_bit_identical(const RunArtifacts& baseline,
                          const RunArtifacts& resumed) {
  EXPECT_EQ(resumed.result.schedule_digest, baseline.result.schedule_digest);
  EXPECT_EQ(resumed.result.total_cost_mc, baseline.result.total_cost_mc);
  EXPECT_EQ(resumed.result.makespan_s, baseline.result.makespan_s);
  EXPECT_EQ(resumed.result.tasks_completed, baseline.result.tasks_completed);
  EXPECT_EQ(resumed.result.completed, baseline.result.completed);
  EXPECT_TRUE(resumed.ledger_ok);
  const ckpt::DivergenceReport rep =
      ckpt::diff_event_logs(baseline.trace_lines, resumed.trace_lines);
  if (!rep.identical) {
    std::ostringstream os;
    ckpt::write_divergence_report(rep, os);
    ADD_FAILURE() << "trace diverged:\n" << os.str();
  }
}

TEST(CkptSim, ResumeFromEverySnapshotIsBitIdentical) {
  const std::uint64_t seed = 7;
  const ckpt::CheckpointDir dir(scratch_dir("sim_every"), /*keep=*/128);
  sim::SimConfig cfg;
  cfg.checkpoint_dir = &dir;
  cfg.checkpoint_every_epochs = 1;
  cfg.checkpoint_label = "test:every";
  const RunArtifacts baseline = run_lips(seed, cfg);
  EXPECT_TRUE(baseline.ledger_ok);
  EXPECT_GT(baseline.result.checkpoints_written, 2u)
      << "scenario too small to exercise mid-run snapshots";
  EXPECT_EQ(baseline.result.checkpoint_failures, 0u);

  const std::vector<std::string> files = dir.list();
  ASSERT_EQ(files.size(), baseline.result.checkpoints_written);
  for (const std::string& file : files) {
    const ckpt::Snapshot snap = ckpt::decode_snapshot(read_file(file));
    EXPECT_EQ(snap.meta.label, "test:every");
    sim::SimConfig rcfg;
    rcfg.restore_from = &snap;
    const RunArtifacts resumed = run_lips(seed, rcfg);
    EXPECT_TRUE(resumed.result.restored);
    expect_bit_identical(baseline, resumed);
  }
}

TEST(CkptSim, ResumeUnderClusterFaultsWithDelaySpeculation) {
  // Exercises the serializers the LiPS path does not: speculative
  // instances, fault windows, and the delay scheduler's wait bookkeeping.
  const std::uint64_t seed = 11;
  const RunSetup s = make_setup(seed);
  sim::FaultStormParams fp;
  fp.mtbf_s = 3000.0;
  fp.mttr_s = 300.0;
  fp.slowdown_rate = 1.0;
  fp.store_loss_rate = 0.2;
  fp.horizon_s = 4000.0;
  fp.seed = seed;
  const sim::FaultPlan plan =
      sim::make_fault_storm(fp, s.cluster.machine_count(),
                            s.cluster.store_count());

  auto run = [&](const ckpt::CheckpointDir* dir,
                 const ckpt::Snapshot* from) -> RunArtifacts {
    const RunSetup rs = make_setup(seed);
    sched::DelayScheduler policy;
    obs::CostLedger ledger;
    sim::SimConfig cfg;
    cfg.speculative_execution = true;
    cfg.speculation.mode = sim::SpeculationConfig::Mode::Naive;
    cfg.faults = plan;
    cfg.record_trace = true;
    cfg.obs.ledger = &ledger;
    cfg.checkpoint_dir = dir;
    cfg.restore_from = from;
    RunArtifacts out;
    out.result = sim::simulate(rs.cluster, rs.workload, policy, cfg);
    out.trace_lines = sim::render_trace_lines(out.result);
    out.ledger_ok = ledger.reconcile(sim::billed_totals(out.result)).ok;
    return out;
  };

  const ckpt::CheckpointDir dir(scratch_dir("sim_delay"), /*keep=*/128);
  const RunArtifacts baseline = run(&dir, nullptr);
  const std::vector<std::string> files = dir.list();
  ASSERT_GT(files.size(), 1u);
  // Resume from a middle snapshot, where fault windows are typically open.
  const ckpt::Snapshot snap =
      ckpt::decode_snapshot(read_file(files[files.size() / 2]));
  const RunArtifacts resumed = run(nullptr, &snap);
  EXPECT_TRUE(resumed.result.restored);
  expect_bit_identical(baseline, resumed);
}

TEST(CkptSim, RestoreRejectsTopologyMismatch) {
  const ckpt::CheckpointDir dir(scratch_dir("sim_mismatch"));
  sim::SimConfig cfg;
  cfg.checkpoint_dir = &dir;
  cfg.checkpoint_label = "test:mismatch";
  (void)run_lips(/*seed=*/3, cfg);
  const std::optional<ckpt::Snapshot> snap = dir.load_latest();
  ASSERT_TRUE(snap.has_value());

  // Same snapshot, different cluster: the topology guard must refuse before
  // any state is half-applied.
  const cluster::Cluster other = cluster::make_ec2_cluster(4, 0.5, 2);
  Rng rng(3);
  workload::SwimParams sp;
  sp.n_jobs = 8;
  sp.duration_s = 2000.0;
  const workload::Workload w =
      workload::make_swim_workload(sp, other, rng).workload;
  core::LipsPolicy policy{core::LipsPolicyOptions{}};
  sim::SimConfig rcfg;
  rcfg.hdfs_replication = 1;
  rcfg.restore_from = &*snap;
  EXPECT_THROW((void)sim::simulate(other, w, policy, rcfg),
               ckpt::SnapshotError);
}

}  // namespace
}  // namespace lips
