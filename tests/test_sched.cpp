// Scheduler-policy tests: locality classification, FIFO head-of-line
// semantics, delay-scheduler patience, and fair-scheduler sharing.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/delay_scheduler.hpp"
#include "sched/fair_scheduler.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sim/simulator.hpp"

namespace lips::sched {
namespace {

using cluster::Cluster;
using workload::Workload;

Cluster grid_cluster(std::size_t nodes, std::size_t zones, double price = 1.0,
                     int slots = 1) {
  Cluster c;
  for (std::size_t z = 0; z < zones; ++z) c.add_zone("z" + std::to_string(z));
  for (std::size_t i = 0; i < nodes; ++i) {
    cluster::Machine m;
    m.name = "m" + std::to_string(i);
    m.zone = ZoneId{i % zones};
    m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(price);
    m.throughput_ecu = 1.0;
    m.map_slots = slots;
    m.uptime_s = 1e9;
    const MachineId id = c.add_machine(std::move(m));
    cluster::DataStore s;
    s.name = "s" + std::to_string(i);
    s.zone = ZoneId{i % zones};
    s.capacity_mb = 1e9;
    s.colocated_machine = id.value();
    c.add_store(std::move(s));
  }
  c.finalize();
  return c;
}

// Two jobs with data on different nodes.
Workload two_jobs(std::size_t tasks_each, StoreId origin_a, StoreId origin_b,
                  double arrival_b = 0.0) {
  Workload w;
  const DataId da = w.add_data({"a", tasks_each * 64.0, origin_a});
  const DataId db = w.add_data({"b", tasks_each * 64.0, origin_b});
  workload::Job ja;
  ja.name = "A";
  ja.tcp_cpu_s_per_mb = 1.0;
  ja.data = {da};
  ja.num_tasks = tasks_each;
  w.add_job(std::move(ja));
  workload::Job jb;
  jb.name = "B";
  jb.tcp_cpu_s_per_mb = 1.0;
  jb.data = {db};
  jb.num_tasks = tasks_each;
  jb.arrival_s = arrival_b;
  w.add_job(std::move(jb));
  return w;
}

// ----------------------------------------------------------------- FIFO ---

TEST(FifoPolicy, HeadOfLineJobMonopolizesSlots) {
  // Job A (arrived first) must be fully scheduled before B starts, even
  // though B's data is local to the second machine.
  const Cluster c = grid_cluster(2, 2);
  const Workload w = two_jobs(6, StoreId{0}, StoreId{1}, /*arrival_b=*/0.0);
  FifoLocalityScheduler fifo;
  const sim::SimResult r = sim::simulate(c, w, fifo);
  ASSERT_TRUE(r.completed);
  // A finishes no later than B (B only gets leftovers while A has pending
  // tasks).
  EXPECT_LE(r.job_finish_s[0], r.job_finish_s[1]);
}

TEST(FifoPolicy, ReadsFromNearestReplica) {
  // Data replicated on stores 0 (co-located) and 2 (remote zone): the
  // single task on machine 0 must read locally → zero read cost.
  Cluster c = grid_cluster(3, 3);
  Workload w;
  const DataId d = w.add_data({"d", 64.0, StoreId{0}});
  workload::Job j;
  j.name = "j";
  j.tcp_cpu_s_per_mb = 1.0;
  j.data = {d};
  j.num_tasks = 1;
  w.add_job(std::move(j));
  FifoLocalityScheduler fifo;
  sim::SimConfig cfg;
  cfg.hdfs_replication = 3;
  const sim::SimResult r = sim::simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.read_transfer_cost_mc.mc(), 0.0);
  EXPECT_DOUBLE_EQ(r.data_local_fraction.value(), 1.0);
}

TEST(FifoPolicy, ReplicationCostChargedAtIngest) {
  const Cluster c = grid_cluster(6, 3);
  Workload w;
  w.add_data({"d", 640.0, StoreId{0}});
  workload::Job j;
  j.name = "j";
  j.tcp_cpu_s_per_mb = 0.1;
  j.data = {DataId{0}};
  j.num_tasks = 10;
  w.add_job(std::move(j));
  FifoLocalityScheduler fifo;
  sim::SimConfig with_repl;
  with_repl.hdfs_replication = 3;
  const sim::SimResult r3 = sim::simulate(c, w, fifo, with_repl);
  FifoLocalityScheduler fifo1;
  const sim::SimResult r1 = sim::simulate(c, w, fifo1);
  // The default replica pipeline puts the 2nd copy off-zone → paid.
  EXPECT_GT(r3.ingest_replication_cost_mc.mc(), 0.0);
  EXPECT_DOUBLE_EQ(r1.ingest_replication_cost_mc.mc(), 0.0);
}

// ---------------------------------------------------------------- delay ---

TEST(DelayPolicy, YieldsToYoungerJobWithLocalTask) {
  // A's data is on node 0 only; B's on node 1 only. Delay scheduling lets B
  // run on node 1 while A waits for node 0 — the defining behavior.
  const Cluster c = grid_cluster(2, 2);
  const Workload w = two_jobs(4, StoreId{0}, StoreId{1});
  DelayScheduler delay(1e9, 1e9);  // infinite patience
  const sim::SimResult r = sim::simulate(c, w, delay);
  ASSERT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.data_local_fraction.value(), 1.0);
  // Both machines worked (B did not starve behind A).
  EXPECT_GT(r.machines[0].tasks_run, 0u);
  EXPECT_GT(r.machines[1].tasks_run, 0u);
}

TEST(DelayPolicy, InvalidDelaysRejected) {
  EXPECT_THROW(DelayScheduler(-1.0, 5.0), PreconditionError);
  EXPECT_THROW(DelayScheduler(10.0, 5.0), PreconditionError);
}

// ----------------------------------------------------------------- fair ---

TEST(FairPolicy, SharesSlotsAcrossJobs) {
  // Under FIFO, job A monopolizes the cluster and finishes early while B
  // waits; under fair (per-job pools) the two progress in lock-step: A
  // finishes later than under FIFO and the two finish times are close.
  const Cluster c = grid_cluster(4, 1, 1.0, 1);
  const Workload w = two_jobs(8, StoreId{0}, StoreId{1});
  FifoLocalityScheduler fifo;
  const sim::SimResult rf = sim::simulate(c, w, fifo);
  FairScheduler fair;
  const sim::SimResult rr = sim::simulate(c, w, fair);
  ASSERT_TRUE(rf.completed);
  ASSERT_TRUE(rr.completed);
  EXPECT_GT(rr.job_finish_s[0], rf.job_finish_s[0]);  // A shares, slows down
  const double gap_fair = std::fabs(rr.job_finish_s[0] - rr.job_finish_s[1]);
  const double gap_fifo = std::fabs(rf.job_finish_s[0] - rf.job_finish_s[1]);
  EXPECT_LT(gap_fair, gap_fifo);  // lock-step progress under fairness
}

TEST(FairPolicy, WeightedPoolsGetProportionalService) {
  // Pool "heavy" (weight 3) should run ~3 tasks for each "light" task when
  // both have abundant pending work.
  const Cluster c = grid_cluster(4, 1, 1.0, 1);
  Workload w;
  const DataId da = w.add_data({"a", 40 * 64.0, StoreId{0}});
  const DataId db = w.add_data({"b", 40 * 64.0, StoreId{1}});
  workload::Job ja;
  ja.name = "A";
  ja.tcp_cpu_s_per_mb = 1.0;
  ja.data = {da};
  ja.num_tasks = 40;
  const JobId a = w.add_job(std::move(ja));
  workload::Job jb;
  jb.name = "B";
  jb.tcp_cpu_s_per_mb = 1.0;
  jb.data = {db};
  jb.num_tasks = 40;
  const JobId b = w.add_job(std::move(jb));
  FairScheduler fair;
  fair.assign_pool(a, "heavy", 3.0);
  fair.assign_pool(b, "light", 1.0);
  const sim::SimResult r = sim::simulate(c, w, fair);
  ASSERT_TRUE(r.completed);
  // The heavy pool should drain first by a clear margin.
  EXPECT_LT(r.job_finish_s[a.value()], r.job_finish_s[b.value()]);
}

TEST(FairPolicy, PoolValidation) {
  FairScheduler fair;
  EXPECT_THROW(fair.assign_pool(JobId{0}, "p", 0.0), PreconditionError);
  EXPECT_THROW(fair.assign_pool(JobId{0}, "p", -1.0), PreconditionError);
}

TEST(FairPolicy, NoStarvationUnderContinuousShortJobs) {
  // A long job plus a stream of short jobs: with fair sharing the long job
  // still completes.
  const Cluster c = grid_cluster(2, 1, 1.0, 1);
  Workload w;
  const DataId dl = w.add_data({"long", 20 * 64.0, StoreId{0}});
  workload::Job lj;
  lj.name = "long";
  lj.tcp_cpu_s_per_mb = 1.0;
  lj.data = {dl};
  lj.num_tasks = 20;
  w.add_job(std::move(lj));
  for (int i = 0; i < 6; ++i) {
    const DataId ds =
        w.add_data({"s" + std::to_string(i), 64.0, StoreId{1}});
    workload::Job sj;
    sj.name = "short" + std::to_string(i);
    sj.tcp_cpu_s_per_mb = 1.0;
    sj.data = {ds};
    sj.num_tasks = 1;
    sj.arrival_s = i * 120.0;
    w.add_job(std::move(sj));
  }
  FairScheduler fair;
  const sim::SimResult r = sim::simulate(c, w, fair);
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(std::isnan(r.job_finish_s[0]));
}

}  // namespace
}  // namespace lips::sched
