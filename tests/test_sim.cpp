// Integration tests for the discrete-event simulator (src/sim) with the
// baseline schedulers (src/sched) and the LiPS policy (src/core).
#include <gtest/gtest.h>

#include <cmath>

#include "core/lips_policy.hpp"
#include "sched/delay_scheduler.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sim/simulator.hpp"

namespace lips::sim {
namespace {

using cluster::Cluster;
using workload::Workload;

// Two machines in separate zones with co-located stores; configurable
// prices/throughputs. Store 0 belongs to machine 0, store 1 to machine 1.
Cluster two_nodes(double price0, double price1, double tp0 = 1.0,
                  double tp1 = 1.0, int slots = 1) {
  Cluster c;
  const ZoneId za = c.add_zone("a");
  const ZoneId zb = c.add_zone("b");
  auto add = [&](ZoneId z, double price, double tp) {
    cluster::Machine m;
    m.name = "m" + std::to_string(c.machine_count());
    m.zone = z;
    m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(price);
    m.throughput_ecu = tp;
    m.map_slots = slots;
    m.uptime_s = 1e9;
    const MachineId id = c.add_machine(std::move(m));
    cluster::DataStore s;
    s.name = "s" + std::to_string(c.store_count());
    s.zone = z;
    s.capacity_mb = 1e9;
    s.colocated_machine = id.value();
    c.add_store(std::move(s));
  };
  add(za, price0, tp0);
  add(zb, price1, tp1);
  c.finalize();
  return c;
}

Workload one_job(double cpu_s_per_mb, double mb, std::size_t tasks,
                 StoreId origin = StoreId{0}) {
  Workload w;
  const DataId d = w.add_data({"d", mb, origin});
  workload::Job j;
  j.name = "job";
  j.tcp_cpu_s_per_mb = cpu_s_per_mb;
  j.data = {d};
  j.num_tasks = tasks;
  w.add_job(std::move(j));
  return w;
}

// ------------------------------------------------------------ mechanics ---

TEST(SimMechanics, SingleTaskTimingAndCostExact) {
  const Cluster c = two_nodes(2.0, 2.0);
  const Workload w = one_job(1.0, 64.0, 1);  // 64 ECU-s, 64 MB
  sched::FifoLocalityScheduler fifo;
  const SimResult r = simulate(c, w, fifo);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_completed, 1u);
  // FIFO picks the node-local machine 0 (machine order, locality level 0):
  // duration = 64 MB / 80 MB/s + 64 ECU-s / 1 ECU = 0.8 + 64 = 64.8 s.
  EXPECT_NEAR(r.makespan_s, 64.8, 1e-9);
  EXPECT_NEAR(r.execution_cost_mc.mc(), 128.0, 1e-9);     // 64 × 2
  EXPECT_NEAR(r.read_transfer_cost_mc.mc(), 0.0, 1e-12);  // local read free
  EXPECT_NEAR(r.total_cost_mc.mc(), 128.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.data_local_fraction.value(), 1.0);
  EXPECT_NEAR(r.machines[0].busy_s, 64.8, 1e-9);
  EXPECT_NEAR(r.machines[1].busy_s, 0.0, 1e-12);
}

TEST(SimMechanics, InputFreeJobRunsWithoutStores) {
  const Cluster c = two_nodes(1.0, 1.0);
  Workload w;
  workload::Job pi;
  pi.name = "pi";
  pi.cpu_fixed_ecu_s = 100.0;
  pi.num_tasks = 4;
  w.add_job(std::move(pi));
  sched::FifoLocalityScheduler fifo;
  const SimResult r = simulate(c, w, fifo);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_completed, 4u);
  EXPECT_NEAR(r.total_cost_mc.mc(), 100.0, 1e-9);
  // Input-free reads count as local by convention.
  EXPECT_DOUBLE_EQ(r.data_local_fraction.value(), 1.0);
}

TEST(SimMechanics, SlotsLimitParallelism) {
  // 8 equal tasks, 2 machines × 1 slot → 4 sequential waves on each.
  const Cluster c = two_nodes(1.0, 1.0);
  const Workload w = one_job(1.0, 8 * 64.0, 8);
  sched::FifoLocalityScheduler fifo;
  const SimResult r = simulate(c, w, fifo);
  ASSERT_TRUE(r.completed);
  // Per task: 64 ECU-s. Local: 64/80+64 = 64.8 s; remote (machine 1 reads
  // zone-crossing): 64/31.25 + 64 = 66.048 s. Four waves ≈ 264 s.
  EXPECT_GT(r.makespan_s, 3 * 64.8);
  EXPECT_LT(r.makespan_s, 5 * 66.1);
  EXPECT_EQ(r.machines[0].tasks_run + r.machines[1].tasks_run, 8u);
}

TEST(SimMechanics, ArrivalsDelayStart) {
  const Cluster c = two_nodes(1.0, 1.0);
  Workload w;
  const DataId d = w.add_data({"d", 64.0, StoreId{0}});
  workload::Job j;
  j.name = "late";
  j.tcp_cpu_s_per_mb = 1.0;
  j.data = {d};
  j.num_tasks = 1;
  j.arrival_s = 500.0;
  w.add_job(std::move(j));
  sched::FifoLocalityScheduler fifo;
  const SimResult r = simulate(c, w, fifo);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.makespan_s, 500.0 + 64.8, 1e-9);
  EXPECT_NEAR(r.sum_job_duration_s, 64.8, 1e-9);
}

TEST(SimMechanics, CostBreakdownSums) {
  const Cluster c = two_nodes(3.0, 1.0, 1.0, 2.0, 2);
  const Workload w = one_job(2.0, 640.0, 10);
  sched::FifoLocalityScheduler fifo;
  const SimResult r = simulate(c, w, fifo);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.total_cost_mc.mc(),
              (r.execution_cost_mc + r.read_transfer_cost_mc +
               r.placement_transfer_cost_mc)
                  .mc(),
              1e-9);
  Millicents machine_cost = Millicents::zero();
  for (const MachineMetrics& m : r.machines)
    machine_cost += m.cpu_cost_mc + m.read_cost_mc;
  EXPECT_NEAR(machine_cost.mc(),
              (r.execution_cost_mc + r.read_transfer_cost_mc).mc(), 1e-9);
}

TEST(SimMechanics, DeterministicAcrossRuns) {
  const Cluster c = two_nodes(3.0, 1.0, 1.0, 2.0, 2);
  const Workload w = one_job(2.0, 640.0, 10);
  sched::FifoLocalityScheduler f1, f2;
  const SimResult a = simulate(c, w, f1);
  const SimResult b = simulate(c, w, f2);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.total_cost_mc.mc(), b.total_cost_mc.mc());
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
}

// ----------------------------------------------------------- schedulers ---

TEST(FifoScheduler, PrefersNodeLocalSlot) {
  // Data local to machine 1 (the later-polled machine); machine 1 has 2
  // slots so locality should dominate even though machine 0 polls first.
  const Cluster c = two_nodes(1.0, 1.0, 1.0, 1.0, 2);
  const Workload w = one_job(1.0, 2 * 64.0, 2, StoreId{1});
  sched::FifoLocalityScheduler fifo;
  const SimResult r = simulate(c, w, fifo);
  ASSERT_TRUE(r.completed);
  // Machine 0 is offered a slot first and takes a remote task (Hadoop
  // default never idles a tracker); machine 1 runs the rest locally.
  EXPECT_GT(r.machines[1].tasks_run, 0u);
}

TEST(DelayScheduler, AchievesHigherLocalityThanDefault) {
  // Many small tasks with all data on machine 0's store: default floods
  // both machines (remote reads from machine 1), delay waits for local
  // slots and should reach (near-)full locality.
  const Cluster c = two_nodes(1.0, 1.0, 4.0, 4.0, 2);
  const Workload w = one_job(0.5, 40 * 64.0, 40);
  sched::FifoLocalityScheduler fifo;
  sched::DelayScheduler delay(1e6, 1e6);  // effectively infinite patience
  const SimResult rf = simulate(c, w, fifo);
  const SimResult rd = simulate(c, w, delay);
  ASSERT_TRUE(rf.completed);
  ASSERT_TRUE(rd.completed);
  EXPECT_GT(rd.data_local_fraction.value(), rf.data_local_fraction.value());
  EXPECT_DOUBLE_EQ(rd.data_local_fraction.value(), 1.0);
  // Locality avoids cross-zone read charges entirely.
  EXPECT_DOUBLE_EQ(rd.read_transfer_cost_mc.mc(), 0.0);
  EXPECT_GT(rf.read_transfer_cost_mc.mc(), 0.0);
}

TEST(DelayScheduler, FallsBackAfterWaiting) {
  // Finite patience: once the delay expires the job accepts remote slots,
  // so machine 1 eventually participates.
  const Cluster c = two_nodes(1.0, 1.0, 1.0, 1.0, 1);
  const Workload w = one_job(1.0, 20 * 64.0, 20);
  sched::DelayScheduler delay(10.0, 30.0);
  const SimResult r = simulate(c, w, delay);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.machines[1].tasks_run, 0u);
  EXPECT_LT(r.data_local_fraction.value(), 1.0);
}

TEST(Speculative, DuplicatesStragglerAndCutsMakespan) {
  // Machine 0 is 10× slower; the last wave on it is a straggler that the
  // fast machine should duplicate. Naive (Hadoop-classic) mode duplicates
  // on time alone — the cost-aware mode would decline here because both
  // machines charge the same price, so the duplicate saves no money.
  const Cluster c = two_nodes(1.0, 1.0, 0.1, 1.0, 1);
  const Workload w = one_job(1.0, 4 * 64.0, 4);
  sched::FifoLocalityScheduler f1, f2;
  SimConfig on;
  on.speculative_execution = true;
  on.speculation.mode = SpeculationConfig::Mode::Naive;
  const SimResult spec = simulate(c, w, f1, on);
  const SimResult base = simulate(c, w, f2);
  ASSERT_TRUE(spec.completed);
  ASSERT_TRUE(base.completed);
  EXPECT_GT(spec.speculative_launched, 0u);
  EXPECT_LT(spec.makespan_s, base.makespan_s);
  // Speculation is never free: duplicates burn money.
  EXPECT_GE(spec.total_cost_mc.mc(), base.total_cost_mc.mc() - 1e-9);
  // The duplicate's bill is metered, and the losing copies' spend is waste.
  EXPECT_GT(spec.speculation_cost_mc.mc(), 0.0);
  EXPECT_GT(spec.wasted_cost_mc.mc(), 0.0);
}

TEST(Speculative, NaiveModeIsDeterministic) {
  const Cluster c = two_nodes(1.0, 1.0, 0.1, 1.0, 1);
  const Workload w = one_job(1.0, 4 * 64.0, 4);
  sched::FifoLocalityScheduler f1, f2;
  SimConfig on;
  on.speculative_execution = true;
  on.speculation.mode = SpeculationConfig::Mode::Naive;
  const SimResult a = simulate(c, w, f1, on);
  const SimResult b = simulate(c, w, f2, on);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);  // bit-identical, not just close
  EXPECT_EQ(a.total_cost_mc, b.total_cost_mc);
  EXPECT_EQ(a.speculation_cost_mc, b.speculation_cost_mc);
  EXPECT_EQ(a.wasted_cost_mc, b.wasted_cost_mc);
  EXPECT_EQ(a.speculative_launched, b.speculative_launched);
  EXPECT_EQ(a.speculative_wasted, b.speculative_wasted);
  // Every cancelled loser was once launched, and its spend is metered.
  EXPECT_LE(a.speculative_wasted, a.speculative_launched);
  EXPECT_GT(a.speculative_launched, 0u);
  EXPECT_GT(a.wasted_cost_mc.mc(), 0.0);
  EXPECT_GT(a.speculation_cost_mc.mc(), 0.0);
}

TEST(Timeouts, SlowTaskIsKilledAndRetried) {
  Cluster c = two_nodes(1.0, 1.0);
  // Cross-zone link so slow that a remote read exceeds the timeout.
  const Workload w = one_job(0.01, 2 * 64.0, 2, StoreId{1});
  // Slow down machine 0's access to store 1 drastically.
  c.set_bandwidth_mb_s(MachineId{0}, StoreId{1}, BytesPerSec::mb_per_s(0.01));
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.task_timeout_s = 600.0;
  const SimResult r = simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.timeout_kills, 0u);
  EXPECT_EQ(r.tasks_completed, 2u);
}

TEST(Timeouts, KillsExactlyRetryBudgetThenRunsToCompletion) {
  Cluster c = two_nodes(1.0, 1.0);
  // Every path to the data is far slower than the timeout: each launch is
  // killed until the retry budget runs out, then the livelock guard lets
  // the task run to completion.
  const Workload w = one_job(0.01, 64.0, 1, StoreId{1});
  c.set_bandwidth_mb_s(MachineId{0}, StoreId{1}, BytesPerSec::mb_per_s(0.01));
  c.set_bandwidth_mb_s(MachineId{1}, StoreId{1}, BytesPerSec::mb_per_s(0.01));
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.task_timeout_s = 600.0;
  cfg.timeout_retries = 3;
  cfg.record_trace = true;
  const SimResult r = simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.timeout_kills, 3u);
  EXPECT_EQ(r.tasks_completed, 1u);
  std::size_t kill_events = 0;
  for (const TraceEvent& e : r.trace)
    if (e.kind == TraceEvent::Kind::TimeoutKill) kill_events += 1;
  EXPECT_EQ(kill_events, 3u);
  // 3 killed runs of 600 s each, then one full run (6400 s read + 0.64 s
  // CPU); each kill also re-polls the queue immediately.
  EXPECT_GT(r.makespan_s, 3 * 600.0 + 6400.0 - 1e-6);
}

TEST(Timeouts, ZeroRetriesDisablesKilling) {
  Cluster c = two_nodes(1.0, 1.0);
  const Workload w = one_job(0.01, 64.0, 1, StoreId{1});
  c.set_bandwidth_mb_s(MachineId{0}, StoreId{1}, BytesPerSec::mb_per_s(0.01));
  c.set_bandwidth_mb_s(MachineId{1}, StoreId{1}, BytesPerSec::mb_per_s(0.01));
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.task_timeout_s = 600.0;
  cfg.timeout_retries = 0;  // the guard engages immediately: never kill
  const SimResult r = simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.timeout_kills, 0u);
  EXPECT_EQ(r.tasks_completed, 1u);
}

// ------------------------------------------------------------ LiPS policy -

TEST(LipsPolicySim, CompletesAndBeatsDefaultOnCost) {
  // CPU-heavy work originating on the dear machine's store: LiPS must shift
  // work (and data) toward the cheap node and win on dollars.
  const Cluster c = two_nodes(5.0, 1.0, 1.0, 1.0, 2);
  const Workload w = one_job(10.0, 10 * 64.0, 10);
  core::LipsPolicyOptions opt;
  opt.epoch_s = 2000.0;
  core::LipsPolicy lips(opt);
  sched::FifoLocalityScheduler fifo;
  const SimResult rl = simulate(c, w, lips);
  const SimResult rf = simulate(c, w, fifo);
  ASSERT_TRUE(rl.completed);
  ASSERT_TRUE(rf.completed);
  EXPECT_LT(rl.total_cost_mc.mc(), rf.total_cost_mc.mc());
  EXPECT_GT(rl.machines[1].tasks_run, rl.machines[0].tasks_run);
  EXPECT_GE(lips.lp_solves(), 1u);
  EXPECT_EQ(lips.lp_failures(), 0u);
}

TEST(LipsPolicySim, SimulatedCostTracksLpPlan) {
  const Cluster c = two_nodes(5.0, 1.0, 1.0, 1.0, 2);
  const Workload w = one_job(10.0, 10 * 64.0, 10);
  core::LipsPolicyOptions opt;
  opt.epoch_s = 5000.0;  // one epoch fits everything
  core::LipsPolicy lips(opt);
  const SimResult r = simulate(c, w, lips);
  ASSERT_TRUE(r.completed);
  // The simulator's dollar meter should match the LP/rounded plan closely
  // (same prices, same assignments).
  EXPECT_NEAR(r.total_cost_mc.mc(), lips.planned_cost_mc().mc(),
              0.05 * lips.planned_cost_mc().mc());
}

TEST(LipsPolicySim, ShortEpochsDeferWorkAcrossEpochs) {
  const Cluster c = two_nodes(5.0, 1.0, 1.0, 1.0, 1);
  const Workload w = one_job(1.0, 10 * 64.0, 10);  // 640 ECU-s
  core::LipsPolicyOptions opt;
  opt.epoch_s = 100.0;  // 200 ECU-s capacity per epoch → several epochs
  opt.model.bandwidth_rows = false;
  core::LipsPolicy lips(opt);
  const SimResult r = simulate(c, w, lips);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.epochs, 3u);
  EXPECT_GE(lips.lp_solves(), 3u);
  EXPECT_EQ(r.tasks_completed, 10u);
}

TEST(LipsPolicySim, DataMovesArePaidAndGateTasks) {
  // All data on the dear node; CPU-heavy job; big enough gap that LiPS
  // moves the data to the cheap store before running there.
  const Cluster c = two_nodes(5.0, 0.2, 1.0, 1.0, 2);
  const Workload w = one_job(20.0, 4 * 64.0, 4);
  core::LipsPolicyOptions opt;
  opt.epoch_s = 10000.0;
  core::LipsPolicy lips(opt);
  const SimResult r = simulate(c, w, lips);
  ASSERT_TRUE(r.completed);
  // Either it moved data (placement cost) or read remotely (read cost);
  // for this gap the LP picks a placement move or remote read of equal
  // price — both register as transfer spend.
  EXPECT_GT((r.placement_transfer_cost_mc + r.read_transfer_cost_mc).mc(),
            0.0);
  // All work must land on the cheap machine.
  EXPECT_EQ(r.machines[0].tasks_run, 0u);
  EXPECT_EQ(r.machines[1].tasks_run, 4u);
}

TEST(LipsPolicySim, IdleEpochsAreHarmless) {
  const Cluster c = two_nodes(1.0, 1.0);
  Workload w;
  const DataId d = w.add_data({"d", 64.0, StoreId{0}});
  workload::Job j;
  j.name = "late";
  j.tcp_cpu_s_per_mb = 1.0;
  j.data = {d};
  j.num_tasks = 1;
  j.arrival_s = 950.0;  // several empty epochs first
  w.add_job(std::move(j));
  core::LipsPolicyOptions opt;
  opt.epoch_s = 100.0;
  core::LipsPolicy lips(opt);
  const SimResult r = simulate(c, w, lips);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_completed, 1u);
}

}  // namespace
}  // namespace lips::sim
