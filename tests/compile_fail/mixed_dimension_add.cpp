// MUST NOT COMPILE: adding quantities of different dimensions. Verified by
// the try_compile negative check in tests/CMakeLists.txt.
#include "common/units.hpp"

int main() {
  auto bad = lips::Bytes::mb(1.0) + lips::Seconds::secs(1.0);
  (void)bad;
  return 0;
}
