// MUST NOT COMPILE: a quantity never converts implicitly to double; money
// leaves the type system only through a named extractor such as .mc().
#include "common/units.hpp"

int main() {
  double leaked = lips::Millicents::mc(1.0);
  (void)leaked;
  return 0;
}
