// Positive control for the try_compile harness: well-dimensioned arithmetic
// must compile, proving the negative checks fail for the right reason.
#include "common/units.hpp"

int main() {
  const lips::Seconds t =
      lips::Bytes::mb(640.0) / lips::BytesPerSec::mb_per_s(10.0);
  const lips::Millicents c =
      lips::CpuSeconds::ecu_s(100.0) * lips::UsdPerCpuSec::mc_per_ecu_s(5.0);
  return t.secs() > 0.0 && c.mc() > 0.0 ? 0 : 1;
}
