// Fault-injection tests (src/sim/faults) — targeted failure scenarios plus
// a seeded chaos sweep checking the simulator's conservation laws under
// storms of crashes, revocations, and store losses. Registered under the
// `chaos` ctest label.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/lips_policy.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sim/simulator.hpp"

namespace lips::sim {
namespace {

using cluster::Cluster;
using workload::Workload;

// Two machines in separate zones with co-located stores (same shape as
// test_sim.cpp): store 0 belongs to machine 0, store 1 to machine 1.
Cluster two_nodes(double price0 = 1.0, double price1 = 1.0, int slots = 1,
                  double store_capacity_mb = 1e9) {
  Cluster c;
  const ZoneId za = c.add_zone("a");
  const ZoneId zb = c.add_zone("b");
  auto add = [&](ZoneId z, double price) {
    cluster::Machine m;
    m.name = "m" + std::to_string(c.machine_count());
    m.zone = z;
    m.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(price);
    m.throughput_ecu = 1.0;
    m.map_slots = slots;
    m.uptime_s = 1e9;
    const MachineId id = c.add_machine(std::move(m));
    cluster::DataStore s;
    s.name = "s" + std::to_string(c.store_count());
    s.zone = z;
    s.capacity_mb = store_capacity_mb;
    s.colocated_machine = id.value();
    c.add_store(std::move(s));
  };
  add(za, price0);
  add(zb, price1);
  c.finalize();
  return c;
}

Workload one_job(double cpu_s_per_mb, double mb, std::size_t tasks,
                 StoreId origin = StoreId{0}) {
  Workload w;
  const DataId d = w.add_data({"d", mb, origin});
  workload::Job j;
  j.name = "job";
  j.tcp_cpu_s_per_mb = cpu_s_per_mb;
  j.data = {d};
  j.num_tasks = tasks;
  w.add_job(std::move(j));
  return w;
}

std::size_t count_kind(const SimResult& r, TraceEvent::Kind k) {
  std::size_t n = 0;
  for (const TraceEvent& e : r.trace)
    if (e.kind == k) n += 1;
  return n;
}

// --------------------------------------------------------- plan plumbing -

TEST(FaultPlan, StormIsDeterministicAndSorted) {
  FaultStormParams p;
  p.mtbf_s = 2000.0;
  p.mttr_s = 300.0;
  p.revoke_probability = 0.5;
  p.store_loss_rate = 1.0;
  p.degrade_rate = 1.0;
  p.seed = 42;
  const FaultPlan a = make_fault_storm(p, 4, 4);
  const FaultPlan b = make_fault_storm(p, 4, 4);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_DOUBLE_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_EQ(a.events[i].machine, b.events[i].machine);
    if (i > 0) {
      EXPECT_GE(a.events[i].time_s, a.events[i - 1].time_s);
    }
  }
  p.seed = 43;
  const FaultPlan other = make_fault_storm(p, 4, 4);
  bool differs = other.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i)
    differs = other.events[i].time_s != a.events[i].time_s;
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ValidateRejectsBadTargets) {
  FaultPlan plan;
  plan.crash(10.0, /*machine=*/7);
  EXPECT_THROW(plan.validate(/*machines=*/2, /*stores=*/2), PreconditionError);
  FaultPlan bad_factor;
  bad_factor.degrade_links(10.0, 0, /*factor=*/0.0, /*window_s=*/60.0);
  EXPECT_THROW(bad_factor.validate(2, 2), PreconditionError);
}

TEST(FaultSpec, ParsesKeysAndRejectsUnknown) {
  const FaultStormParams p =
      parse_fault_spec("mtbf=3600,mttr=600,revoke=0.1,warn=90,seed=7");
  EXPECT_DOUBLE_EQ(p.mtbf_s, 3600.0);
  EXPECT_DOUBLE_EQ(p.mttr_s, 600.0);
  EXPECT_DOUBLE_EQ(p.revoke_probability, 0.1);
  EXPECT_DOUBLE_EQ(p.spot_warning_s, 90.0);
  EXPECT_EQ(p.seed, 7u);
  EXPECT_THROW((void)parse_fault_spec("mtbf=notanumber"), PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("bogus=1"), PreconditionError);
}

TEST(FaultSpec, RoundTripsEveryKey) {
  const FaultStormParams p = parse_fault_spec(
      "mtbf=1,mttr=2,permanent=0.5,revoke=0.25,warn=30,storeloss=0.75,"
      "degrade=1.5,degrade_factor=0.5,degrade_window=120,slowdown=2.5,"
      "slowdown_factor=8,slowdown_window=240,horizon=5000,seed=99");
  EXPECT_DOUBLE_EQ(p.mtbf_s, 1.0);
  EXPECT_DOUBLE_EQ(p.mttr_s, 2.0);
  EXPECT_DOUBLE_EQ(p.permanent_fraction, 0.5);
  EXPECT_DOUBLE_EQ(p.revoke_probability, 0.25);
  EXPECT_DOUBLE_EQ(p.spot_warning_s, 30.0);
  EXPECT_DOUBLE_EQ(p.store_loss_rate, 0.75);
  EXPECT_DOUBLE_EQ(p.degrade_rate, 1.5);
  EXPECT_DOUBLE_EQ(p.degrade_factor, 0.5);
  EXPECT_DOUBLE_EQ(p.degrade_window_s, 120.0);
  EXPECT_DOUBLE_EQ(p.slowdown_rate, 2.5);
  EXPECT_DOUBLE_EQ(p.slowdown_factor, 8.0);
  EXPECT_DOUBLE_EQ(p.slowdown_window_s, 240.0);
  EXPECT_DOUBLE_EQ(p.horizon_s, 5000.0);
  EXPECT_EQ(p.seed, 99u);
}

TEST(FaultSpec, RejectsDuplicateAndMalformedEntries) {
  EXPECT_THROW((void)parse_fault_spec("mtbf=1,mtbf=2"), PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("slowdown=1,mttr=2,slowdown=1"),
               PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("mtbf"), PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("mtbf="), PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("mtbf=12x"), PreconditionError);
  EXPECT_THROW((void)parse_fault_spec("=5"), PreconditionError);
}

TEST(FaultPlan, StormGeneratesSlowdownWindows) {
  FaultStormParams p;
  p.slowdown_rate = 3.0;
  p.slowdown_factor = 8.0;
  p.slowdown_window_s = 300.0;
  p.horizon_s = 10000.0;
  p.seed = 5;
  const FaultPlan plan = make_fault_storm(p, 4, 4);
  std::size_t slowdowns = 0;
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.kind, FaultEvent::Kind::MachineSlowdown);
    EXPECT_DOUBLE_EQ(e.factor, 1.0 / 8.0);  // severity → rate multiplier
    EXPECT_DOUBLE_EQ(e.duration_s, 300.0);
    EXPECT_LT(e.machine, 4u);
    slowdowns += 1;
  }
  EXPECT_GE(slowdowns, 1u);
  plan.validate(4, 4);  // everything generated must be valid
  // Severity must be a slowdown multiple > 1 (1/factor is the rate).
  p.slowdown_factor = 1.0;
  EXPECT_THROW(make_fault_storm(p, 4, 4), PreconditionError);
}

TEST(FaultPlan, ValidateRejectsSlowdownRateAtOrAboveOne) {
  FaultPlan plan;
  plan.slow_machine(10.0, 0, /*factor=*/1.0, /*window_s=*/60.0);
  EXPECT_THROW(plan.validate(2, 2), PreconditionError);
  FaultPlan zero_window;
  zero_window.slow_machine(10.0, 0, 0.5, 0.0);
  EXPECT_THROW(zero_window.validate(2, 2), PreconditionError);
}

TEST(FaultPlan, EmptyPlanChangesNothing) {
  const Cluster c = two_nodes();
  const Workload w = one_job(1.0, 4 * 64.0, 4);
  sched::FifoLocalityScheduler f1, f2;
  SimConfig plain;
  SimConfig with_empty;
  with_empty.faults = FaultPlan{};
  const SimResult a = simulate(c, w, f1, plain);
  const SimResult b = simulate(c, w, f2, with_empty);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);  // bit-identical, not just close
  EXPECT_EQ(a.total_cost_mc, b.total_cost_mc);
  EXPECT_EQ(a.execution_cost_mc, b.execution_cost_mc);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.tasks_killed_by_faults, 0u);
  EXPECT_EQ(a.tasks_lost, 0u);
  EXPECT_EQ(a.machines_lost, 0u);
  EXPECT_EQ(a.wasted_cost_mc.mc(), 0.0);
  EXPECT_EQ(a.machines[0].downtime_s, 0.0);
  EXPECT_EQ(a.speculation_cost_mc.mc(), 0.0);
  EXPECT_EQ(a.machine_slowdowns, 0u);
  EXPECT_EQ(a.machines[0].slowed_s, 0.0);
  EXPECT_EQ(b.machines[0].slowed_s, 0.0);
}

// ------------------------------------------------------- failure handling -

TEST(MachineFaults, TransientCrashKillsRequeuesAndRestores) {
  const Cluster c = two_nodes();
  const Workload w = one_job(1.0, 4 * 64.0, 4);  // ~64.8 s per task
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.faults.crash(/*time_s=*/30.0, /*machine=*/0, /*repair_s=*/200.0);
  const SimResult r = simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_completed, 4u);
  EXPECT_EQ(r.machines_lost, 1u);
  EXPECT_EQ(r.machines_restored, 1u);
  EXPECT_GE(r.tasks_killed_by_faults, 1u);
  EXPECT_EQ(r.fault_retries, r.tasks_killed_by_faults);
  EXPECT_EQ(r.tasks_lost, 0u);
  EXPECT_GT(r.wasted_cost_mc.mc(), 0.0);  // 30 s of work died with the machine
  EXPECT_NEAR(r.machines[0].downtime_s, 200.0, 1e-9);
  EXPECT_EQ(count_kind(r, TraceEvent::Kind::MachineLost), 1u);
  EXPECT_EQ(count_kind(r, TraceEvent::Kind::MachineRestored), 1u);
  EXPECT_GE(count_kind(r, TraceEvent::Kind::TaskRequeued), 1u);
}

TEST(MachineFaults, PermanentCrashShiftsWorkToSurvivor) {
  const Cluster c = two_nodes();
  const Workload w = one_job(1.0, 4 * 64.0, 4);
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.faults.crash(30.0, 0);  // repair_s = 0: permanent
  const SimResult r = simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.machines_lost, 1u);
  EXPECT_EQ(r.machines_restored, 0u);
  // Everything after the crash runs on machine 1.
  EXPECT_EQ(r.tasks_completed, 4u);
  EXPECT_GE(r.machines[1].tasks_run, 3u);
  EXPECT_GT(r.machines[0].downtime_s, 0.0);  // down through end of run
}

TEST(MachineFaults, RetryBudgetExhaustionAbandonsTheJob) {
  const Cluster c = two_nodes(1.0, 1.0, /*slots=*/2);
  const Workload w = one_job(1.0, 2 * 64.0, 2);
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.fault_retry_budget = 0;  // first fault kill is fatal
  cfg.faults.crash(30.0, 0, /*repair_s=*/100.0);
  const SimResult r = simulate(c, w, fifo, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_GE(r.tasks_lost, 1u);
  EXPECT_EQ(r.fault_retries, 0u);
  EXPECT_TRUE(std::isnan(r.job_finish_s[0]));
}

TEST(MachineFaults, SpotRevocationWarnsThenKills) {
  const Cluster c = two_nodes();
  const Workload w = one_job(1.0, 4 * 64.0, 4);
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.faults.revoke_spot(/*time_s=*/10.0, /*machine=*/0, /*warning_s=*/50.0);
  const SimResult r = simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.spot_revocations, 1u);
  EXPECT_EQ(r.machines_lost, 1u);
  EXPECT_EQ(r.machines_restored, 0u);
  // Warning precedes the loss by exactly the notice period.
  double warn_t = -1.0, lost_t = -1.0;
  for (const TraceEvent& e : r.trace) {
    if (e.kind == TraceEvent::Kind::SpotRevocationWarning) warn_t = e.time_s;
    if (e.kind == TraceEvent::Kind::MachineLost) lost_t = e.time_s;
  }
  EXPECT_NEAR(warn_t, 10.0, 1e-9);
  EXPECT_NEAR(lost_t, 60.0, 1e-9);
}

TEST(StoreFaults, StoreLossRefetchesFromSurvivor) {
  const Cluster c = two_nodes();
  const Workload w = one_job(1.0, 4 * 64.0, 4, StoreId{0});
  sched::FifoLocalityScheduler fifo;
  SimConfig cfg;
  cfg.record_trace = true;
  cfg.faults.lose_store(/*time_s=*/30.0, /*store=*/0);
  const SimResult r = simulate(c, w, fifo, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.stores_lost, 1u);
  EXPECT_EQ(r.data_refetches, 1u);  // re-materialized at the surviving store
  EXPECT_EQ(r.tasks_completed, 4u);
  EXPECT_EQ(count_kind(r, TraceEvent::Kind::StoreLost), 1u);
  // In-flight readers of store 0 died with it.
  EXPECT_GE(r.tasks_killed_by_faults, 1u);
}

TEST(StoreFaults, LinkDegradeStretchesTransfers) {
  const Cluster c = two_nodes();
  // Transfer-dominated job arriving after the degradation window opens
  // (instances price their transfer at launch time).
  Workload w;
  const DataId d = w.add_data({"d", 2 * 640.0, StoreId{0}});
  workload::Job j;
  j.name = "job";
  j.tcp_cpu_s_per_mb = 0.1;
  j.data = {d};
  j.num_tasks = 2;
  j.arrival_s = 5.0;
  w.add_job(std::move(j));
  sched::FifoLocalityScheduler f1, f2;
  SimConfig slow;
  slow.faults.degrade_links(0.0, 0, /*factor=*/0.05, /*window_s=*/1e6)
      .degrade_links(0.0, 1, 0.05, 1e6);
  const SimResult degraded = simulate(c, w, f1, slow);
  const SimResult base = simulate(c, w, f2);
  ASSERT_TRUE(degraded.completed);
  ASSERT_TRUE(base.completed);
  EXPECT_GT(degraded.makespan_s, base.makespan_s * 1.5);
  // Bandwidth is time, not money: the bill is unchanged.
  EXPECT_NEAR(degraded.total_cost_mc.mc(), base.total_cost_mc.mc(), 1e-9);
}

// ------------------------------------------------------------ LiPS policy -

TEST(LipsFaults, ReplansOffCycleAfterMachineLoss) {
  const Cluster c = two_nodes(5.0, 1.0, /*slots=*/2);
  const Workload w = one_job(10.0, 10 * 64.0, 10);
  core::LipsPolicyOptions opt;
  opt.epoch_s = 2000.0;
  core::LipsPolicy lips(opt);
  SimConfig cfg;
  cfg.faults.crash(100.0, /*machine=*/1, /*repair_s=*/500.0);
  const SimResult r = simulate(c, w, lips, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.tasks_completed, 10u);
  EXPECT_GE(lips.off_cycle_resolves(), 2u);  // loss + restore
  EXPECT_EQ(r.tasks_lost, 0u);
}

TEST(LipsFaults, SpotWarningSteersWorkOffTheDoomedMachine) {
  // The cheap machine is revoked early; LiPS must finish on the dear one.
  const Cluster c = two_nodes(5.0, 1.0, /*slots=*/2);
  const Workload w = one_job(10.0, 6 * 64.0, 6);
  core::LipsPolicyOptions opt;
  opt.epoch_s = 2000.0;
  core::LipsPolicy lips(opt);
  SimConfig cfg;
  cfg.faults.revoke_spot(50.0, /*machine=*/1, /*warning_s=*/120.0);
  const SimResult r = simulate(c, w, lips, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.spot_revocations, 1u);
  EXPECT_EQ(r.tasks_completed, 6u);
  EXPECT_GE(lips.off_cycle_resolves(), 2u);  // warning + execution
}

TEST(LipsFaults, InfeasibleLpFallsBackToGreedyPlan) {
  // Stores far too small to hold the 640 MB object: the LP's placement
  // constraint (9)+(11) is infeasible even with the fake node, so the
  // policy must fall back to a greedy plan instead of stalling the epoch.
  const Cluster c = two_nodes(5.0, 1.0, /*slots=*/2, /*store_capacity_mb=*/1.0);
  const Workload w = one_job(1.0, 640.0, 4);
  core::LipsPolicyOptions opt;
  opt.epoch_s = 2000.0;
  core::LipsPolicy lips(opt);
  const SimResult r = simulate(c, w, lips);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(lips.lp_failures(), 1u);
  EXPECT_GE(lips.lp_fallbacks(), 1u);
  EXPECT_EQ(lips.lp_failures(), lips.lp_fallbacks());
  EXPECT_EQ(r.tasks_completed, 4u);
}

// ------------------------------------------------------------ chaos sweep -

// Conservation laws that must hold under any fault storm:
//  * the cost meter equals the sum of its components;
//  * per-machine cost accounting sums to the global meters;
//  * every task is completed, lost, or still in flight at the horizon;
//  * identical seeds give identical runs.
void check_invariants(const SimResult& r, std::size_t total_tasks) {
  EXPECT_NEAR(r.total_cost_mc.mc(),
              (r.execution_cost_mc + r.read_transfer_cost_mc +
               r.placement_transfer_cost_mc + r.ingest_replication_cost_mc)
                  .mc(),
              1e-6);
  Millicents machine_cpu = Millicents::zero();
  Millicents machine_read = Millicents::zero();
  for (const MachineMetrics& m : r.machines) {
    machine_cpu += m.cpu_cost_mc;
    machine_read += m.read_cost_mc;
  }
  EXPECT_NEAR(machine_cpu.mc(), r.execution_cost_mc.mc(), 1e-6);
  EXPECT_NEAR(machine_read.mc(), r.read_transfer_cost_mc.mc(), 1e-6);
  EXPECT_LE(r.tasks_completed + r.tasks_lost, total_tasks);
  if (r.completed) {
    EXPECT_EQ(r.tasks_completed, total_tasks);
    EXPECT_EQ(r.tasks_lost, 0u);
  }
  EXPECT_GE(r.wasted_cost_mc.mc(), 0.0);
  EXPECT_LE(r.wasted_cost_mc.mc(), r.total_cost_mc.mc() + 1e-6);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.total_cost_mc, b.total_cost_mc);
  EXPECT_EQ(a.wasted_cost_mc, b.wasted_cost_mc);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.tasks_killed_by_faults, b.tasks_killed_by_faults);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.tasks_lost, b.tasks_lost);
}

TEST(ChaosSweep, FifoSurvives100SeededStorms) {
  const Cluster c = two_nodes(1.0, 2.0, /*slots=*/2);
  const Workload w = one_job(1.0, 8 * 64.0, 8);
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    FaultStormParams p;
    p.mtbf_s = 800.0;  // several crashes over the run
    p.mttr_s = 120.0;
    p.horizon_s = 4000.0;
    p.seed = seed;
    SimConfig cfg;
    cfg.faults = make_fault_storm(p, c.machine_count(), c.store_count());
    sched::FifoLocalityScheduler f1, f2;
    const SimResult a = simulate(c, w, f1, cfg);
    const SimResult b = simulate(c, w, f2, cfg);
    SCOPED_TRACE("seed " + std::to_string(seed));
    check_invariants(a, w.total_tasks());
    expect_identical(a, b);
    // Transient-only storms lose nothing: all work eventually completes.
    EXPECT_TRUE(a.completed);
  }
}

TEST(ChaosSweep, LipsSurvivesStormsWithRevocationsAndStoreLoss) {
  const Cluster c = two_nodes(2.0, 1.0, /*slots=*/2);
  const Workload w = one_job(2.0, 6 * 64.0, 6);
  std::size_t storms_with_faults = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultStormParams p;
    p.mtbf_s = 1500.0;
    p.mttr_s = 200.0;
    p.store_loss_rate = 0.5;
    p.horizon_s = 3000.0;
    p.seed = seed;
    SimConfig cfg;
    cfg.faults = make_fault_storm(p, c.machine_count(), c.store_count());
    if (!cfg.faults.empty()) storms_with_faults += 1;
    core::LipsPolicyOptions opt;
    opt.epoch_s = 400.0;
    core::LipsPolicy lips(opt);
    const SimResult r = simulate(c, w, lips, cfg);
    SCOPED_TRACE("seed " + std::to_string(seed));
    check_invariants(r, w.total_tasks());
    // Unless the storm wiped every store (data unrecoverable), nothing is
    // permanently lost and LiPS must finish all work.
    std::size_t store_losses = 0;
    for (const FaultEvent& e : cfg.faults.events)
      if (e.kind == FaultEvent::Kind::StoreLoss) store_losses += 1;
    if (store_losses < c.store_count()) {
      EXPECT_TRUE(r.completed);
      EXPECT_EQ(r.tasks_lost, 0u);
    }
  }
  EXPECT_GT(storms_with_faults, 10u);
}

}  // namespace
}  // namespace lips::sim
