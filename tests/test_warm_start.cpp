// Warm-started incremental LP solving (DESIGN.md §8).
//
// Three layers under test:
//   * the automatic iteration budget formula (solver.hpp),
//   * RevisedSimplexSolver basis export / import (round-trip determinism and
//     warm-vs-cold agreement under randomized model perturbations, including
//     Infeasible and explicit IterationLimit outcomes),
//   * core::EpochLpContext (in-place model deltas, structure-change rebuild
//     with basis remap, invalidation, and infeasibility handling).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/epoch_lp_context.hpp"
#include "core/lp_models.hpp"
#include "lp/model.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/solver.hpp"
#include "workload/workload.hpp"

namespace lips::lp {
namespace {

// ------------------------------------------- automatic iteration budget ---

// Satellite fix for `max_iterations == 0`: the budget scales with model size
// cold and with the observed infeasibility delta warm. Pins the formula:
//   cold(m, n)        = 500 + 60 * (m + n)
//   warm(m, n, delta) = min(200 + 10 * m + 50 * delta, cold(m, n))
TEST(AutomaticIterationBudget, PinsFormula) {
  EXPECT_EQ(automatic_iteration_budget(0, 0), 500u);
  EXPECT_EQ(automatic_iteration_budget(10, 30), 500u + 60u * 40u);
  EXPECT_EQ(automatic_iteration_budget(100, 400), 500u + 60u * 500u);

  // Warm budgets grow with the delta, not the model.
  EXPECT_EQ(automatic_iteration_budget(10, 30, 0u), 200u + 10u * 10u);
  EXPECT_EQ(automatic_iteration_budget(10, 30, 4u),
            200u + 10u * 10u + 50u * 4u);
  EXPECT_EQ(automatic_iteration_budget(1000, 30, 7u),
            200u + 10u * 1000u + 50u * 7u);

  // ... but are always capped by the cold budget.
  EXPECT_EQ(automatic_iteration_budget(10, 30, 1000000u),
            automatic_iteration_budget(10, 30));
  for (std::size_t delta = 0; delta < 200; delta += 13)
    EXPECT_LE(automatic_iteration_budget(5, 5, delta),
              automatic_iteration_budget(5, 5));
}

// -------------------------------------------------- basis import/export ---

/// Random feasible-by-construction boxed model (the test_lp idiom): pick x0
/// inside the box, then give every row enough slack to hold x0.
LpModel random_feasible_model(Rng& rng, std::size_t n, std::size_t k) {
  LpModel m;
  std::vector<double> x0;
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = rng.uniform(-4, 4);
    const double hi = lo + rng.uniform(0.5, 8);
    m.add_variable(lo, hi, rng.uniform(-3, 3));
    x0.push_back(rng.uniform(lo, hi));
  }
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<Entry> es;
    double lhs = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!rng.bernoulli(0.8)) continue;
      const double c = rng.uniform(-2, 2);
      es.push_back({j, c});
      lhs += c * x0[j];
    }
    if (es.empty()) es.push_back({0, 1.0}), lhs = x0[0];
    const int sense = static_cast<int>(rng.index(3));
    if (sense == 0) {
      m.add_constraint(es, Sense::LessEqual, lhs + rng.uniform(0, 3));
    } else if (sense == 1) {
      m.add_constraint(es, Sense::GreaterEqual, lhs - rng.uniform(0, 3));
    } else {
      m.add_constraint(es, Sense::Equal, lhs);
    }
  }
  return m;
}

// An exported basis fed straight back into the same model must (a) be
// accepted, (b) need zero repair pivots, and (c) export bit-identically —
// and the whole export is deterministic across repeated cold solves.
TEST(BasisRoundTrip, BitIdenticalAndDeterministic) {
  Rng rng(460901);
  RevisedSimplexSolver solver;  // lips-lint: allow(direct-solver-ctor)
  for (int trial = 0; trial < 20; ++trial) {
    const LpModel m =
        random_feasible_model(rng, 3 + rng.index(6), 2 + rng.index(5));
    const LpSolution cold = solver.solve(m);
    ASSERT_TRUE(cold.optimal()) << "trial " << trial;
    ASSERT_EQ(cold.basis.variables.size(), m.num_variables());
    ASSERT_EQ(cold.basis.slacks.size(), m.num_constraints());

    // Determinism: an identical cold solve exports an identical basis.
    const LpSolution again = solver.solve(m);
    EXPECT_EQ(again.basis, cold.basis) << "trial " << trial;

    // Round trip: warm solve from the optimal basis is a no-op.
    const LpSolution warm = solver.solve_with_basis(m, cold.basis);
    ASSERT_TRUE(warm.optimal()) << "trial " << trial;
    EXPECT_TRUE(warm.warm_start_attempted);
    EXPECT_TRUE(warm.warm_start_used) << "trial " << trial;
    EXPECT_EQ(warm.repair_iterations, 0u) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-9 * (1.0 + std::fabs(cold.objective)));
    EXPECT_EQ(warm.basis, cold.basis) << "trial " << trial;
  }
}

// Randomized epoch-style perturbations: RHS drift, objective drift, bound
// tightening. The warm solve (old basis) must agree with a cold solve of the
// perturbed model in status — Optimal *and* Infeasible — and in objective.
TEST(WarmStart, MatchesColdUnderRandomPerturbation) {
  Rng rng(20260805);
  RevisedSimplexSolver solver;  // lips-lint: allow(direct-solver-ctor)
  int optimal_seen = 0, infeasible_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    LpModel m =
        random_feasible_model(rng, 3 + rng.index(6), 2 + rng.index(5));
    const LpSolution base = solver.solve(m);
    ASSERT_TRUE(base.optimal()) << "trial " << trial;

    // Perturb in place — exactly the delta kinds EpochLpContext applies.
    for (std::size_t i = 0; i < m.num_constraints(); ++i) {
      if (!rng.bernoulli(0.5)) continue;
      m.set_rhs(i, m.constraint(i).rhs + rng.uniform(-1.5, 1.5));
    }
    for (std::size_t j = 0; j < m.num_variables(); ++j) {
      if (rng.bernoulli(0.4))
        m.set_objective(j, m.variable(j).objective + rng.uniform(-1, 1));
      if (rng.bernoulli(0.25)) {
        const Variable& v = m.variable(j);
        const double mid = 0.5 * (v.lower + v.upper);
        m.set_bounds(j, v.lower + rng.uniform01() * (mid - v.lower),
                     v.upper - rng.uniform01() * (v.upper - mid));
      }
    }

    const LpSolution cold = solver.solve(m);
    const LpSolution warm = solver.solve_with_basis(m, base.basis);
    EXPECT_TRUE(warm.warm_start_attempted) << "trial " << trial;
    ASSERT_EQ(warm.status, cold.status)
        << "trial " << trial << ": warm " << to_string(warm.status)
        << " vs cold " << to_string(cold.status);
    if (cold.optimal()) {
      ++optimal_seen;
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-6 * (1.0 + std::fabs(cold.objective)))
          << "trial " << trial;
      EXPECT_LE(m.max_violation(warm.values), 1e-6) << "trial " << trial;
    } else {
      ++infeasible_seen;
      EXPECT_EQ(cold.status, SolveStatus::Infeasible) << "trial " << trial;
    }
  }
  // The suite must actually exercise both outcomes.
  EXPECT_GE(optimal_seen, 10);
  EXPECT_GE(infeasible_seen, 5);
}

// A perturbation that makes the model infeasible by construction: the warm
// solve must report Infeasible, not repair its way into nonsense.
TEST(WarmStart, ReportsInfeasibilityFromStaleBasis) {
  LpModel m;
  for (int j = 0; j < 4; ++j) m.add_variable(0.0, 1.0, 1.0 + j);
  std::vector<Entry> es;
  for (std::size_t j = 0; j < 4; ++j) es.push_back({j, 1.0});
  m.add_constraint(es, Sense::GreaterEqual, 2.0);
  RevisedSimplexSolver solver;  // lips-lint: allow(direct-solver-ctor)
  const LpSolution base = solver.solve(m);
  ASSERT_TRUE(base.optimal());

  m.set_rhs(0, 5.0);  // sum of four [0,1] vars can never reach 5
  const LpSolution cold = solver.solve(m);
  const LpSolution warm = solver.solve_with_basis(m, base.basis);
  EXPECT_EQ(cold.status, SolveStatus::Infeasible);
  EXPECT_EQ(warm.status, SolveStatus::Infeasible);
}

// An *explicit* iteration budget is honored on the warm path — the solver
// must report IterationLimit rather than silently granting itself the cold
// budget (which only the automatic mode may do).
TEST(WarmStart, ExplicitIterationLimitHonored) {
  LpModel m;
  const std::size_t n = 8;
  for (std::size_t j = 0; j < n; ++j) m.add_variable(0.0, 1.0, -1.0);
  std::vector<Entry> es;
  for (std::size_t j = 0; j < n; ++j) es.push_back({j, 1.0});
  m.add_constraint(es, Sense::LessEqual, static_cast<double>(n) - 1.0);
  RevisedSimplexSolver relaxed;  // lips-lint: allow(direct-solver-ctor)
  const LpSolution base = relaxed.solve(m);
  ASSERT_TRUE(base.optimal());

  // Collapse the capacity so every at-upper column must be walked back.
  m.set_rhs(0, 0.5);
  SolverOptions tight;
  tight.max_iterations = 1;
  RevisedSimplexSolver limited(tight);  // lips-lint: allow(direct-solver-ctor)
  const LpSolution warm = limited.solve_with_basis(m, base.basis);
  EXPECT_EQ(warm.status, SolveStatus::IterationLimit);
  // With an automatic budget the same warm solve completes.
  RevisedSimplexSolver free_solver;  // lips-lint: allow(direct-solver-ctor)
  const LpSolution ok = free_solver.solve_with_basis(m, base.basis);
  ASSERT_TRUE(ok.optimal());
  EXPECT_NEAR(ok.objective, free_solver.solve(m).objective, 1e-9);
}

// Pricing-rule cross-check: devex (default) and Dantzig must agree on the
// optimum; devex is a pricing heuristic, not a different algorithm.
TEST(WarmStart, DevexAndDantzigAgree) {
  Rng rng(7411);
  SolverOptions dantzig_opts;
  dantzig_opts.pricing = PricingRule::Dantzig;
  RevisedSimplexSolver devex;  // lips-lint: allow(direct-solver-ctor)
  RevisedSimplexSolver dantzig(  // lips-lint: allow(direct-solver-ctor)
      dantzig_opts);
  for (int trial = 0; trial < 20; ++trial) {
    const LpModel m =
        random_feasible_model(rng, 4 + rng.index(8), 3 + rng.index(6));
    const LpSolution a = devex.solve(m);
    const LpSolution b = dantzig.solve(m);
    ASSERT_TRUE(a.optimal()) << "trial " << trial;
    ASSERT_TRUE(b.optimal()) << "trial " << trial;
    EXPECT_NEAR(a.objective, b.objective,
                1e-6 * (1.0 + std::fabs(a.objective)))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace lips::lp

// =================================================== core::EpochLpContext ==

namespace lips::core {
namespace {

struct Scenario {
  cluster::Cluster cluster;
  workload::Workload workload;
};

Scenario make_scenario(unsigned seed, std::size_t tasks = 60) {
  Scenario s{cluster::make_ec2_cluster(6, 0.5, 3), {}};
  Rng rng(seed);
  workload::RandomWorkloadParams p;
  p.n_tasks = tasks;
  s.workload = workload::make_random_workload(p, s.cluster, rng);
  return s;
}

/// The online options the policy uses: epoch horizon + fake node.
ModelOptions online_options(const Scenario& s, std::size_t epoch) {
  ModelOptions opt;
  opt.epoch_s = 600.0;
  opt.fake_node = true;
  opt.price_time = 600.0 * static_cast<double>(epoch);
  std::vector<double> factors(s.cluster.machine_count());
  for (std::size_t m = 0; m < factors.size(); ++m)
    factors[m] = 1.0 - 0.05 * static_cast<double>((epoch + m) % 3);
  opt.machine_throughput_factor = std::move(factors);
  return opt;
}

std::vector<double> remaining_at(const Scenario& s, std::size_t epoch) {
  std::vector<double> remaining(s.workload.job_count());
  for (std::size_t k = 0; k < remaining.size(); ++k)
    remaining[k] =
        std::max(0.1, 1.0 - 0.15 * static_cast<double>(epoch * (k % 3 + 1)));
  return remaining;
}

// The delta path (in-place numeric update + warm basis) must reproduce the
// one-shot solve_co_scheduling result across a multi-epoch drift.
TEST(EpochLpContext, DeltaPathMatchesColdAcrossEpochs) {
  const Scenario s = make_scenario(31);
  EpochLpContext ctx;
  for (std::size_t epoch = 0; epoch < 5; ++epoch) {
    const ModelOptions opt = online_options(s, epoch);
    const std::vector<double> remaining = remaining_at(s, epoch);
    const LpSchedule cold =
        solve_co_scheduling(s.cluster, s.workload, opt, {}, remaining);
    const LpSchedule inc = ctx.solve(s.cluster, s.workload, opt, {}, remaining);
    ASSERT_EQ(inc.status, cold.status) << "epoch " << epoch;
    ASSERT_TRUE(inc.optimal()) << "epoch " << epoch;
    EXPECT_NEAR(inc.objective_mc.mc(), cold.objective_mc.mc(),
                1e-5 * (1.0 + cold.objective_mc.mc()))
        << "epoch " << epoch;
    if (epoch == 0) {
      EXPECT_FALSE(inc.model_reused);
      EXPECT_FALSE(inc.warm_start_used);
    } else {
      EXPECT_TRUE(inc.model_reused) << "epoch " << epoch;
      EXPECT_TRUE(inc.warm_start_used) << "epoch " << epoch;
      // A warm re-solve needs far fewer pivots than the cold reference.
      EXPECT_LE(inc.lp_iterations, cold.lp_iterations) << "epoch " << epoch;
    }
  }
  const EpochLpContext::Stats& st = ctx.stats();
  EXPECT_EQ(st.solves, 5u);
  EXPECT_EQ(st.builds, 1u);
  EXPECT_EQ(st.model_reuses, 4u);
  EXPECT_EQ(st.warm_solves, 4u);
  EXPECT_EQ(st.cold_fallbacks, 0u);
}

// Changing the job subset changes the model structure: the context must
// rebuild (not corrupt the cached model) and still produce the cold answer,
// warm-starting from the remapped basis where possible.
TEST(EpochLpContext, StructureChangeRebuildsAndRemaps) {
  const Scenario s = make_scenario(32);
  ASSERT_GE(s.workload.job_count(), 3u);
  JobSubset all;
  for (std::size_t k = 0; k < s.workload.job_count(); ++k)
    all.push_back(JobId{k});
  JobSubset fewer(all.begin(), all.end() - 1);  // one job "completes"

  EpochLpContext ctx;
  const ModelOptions opt = online_options(s, 1);
  const LpSchedule a = ctx.solve(s.cluster, s.workload, opt, all);
  ASSERT_TRUE(a.optimal());
  const LpSchedule b = ctx.solve(s.cluster, s.workload, opt, fewer);
  ASSERT_TRUE(b.optimal());
  const LpSchedule cold = solve_co_scheduling(s.cluster, s.workload, opt, fewer);
  EXPECT_NEAR(b.objective_mc.mc(), cold.objective_mc.mc(),
              1e-5 * (1.0 + cold.objective_mc.mc()));
  EXPECT_FALSE(b.model_reused);  // structure changed → rebuilt
  EXPECT_EQ(ctx.stats().builds, 2u);
  // The remapped basis keeps the surviving jobs' columns, so the re-solve
  // still warm-starts.
  EXPECT_TRUE(b.warm_start_used);

  // And the job coming *back* is another structure change, not a crash.
  const LpSchedule c = ctx.solve(s.cluster, s.workload, opt, all);
  ASSERT_TRUE(c.optimal());
  EXPECT_NEAR(c.objective_mc.mc(), a.objective_mc.mc(),
              1e-5 * (1.0 + a.objective_mc.mc()));
}

// Infeasible epochs (every machine excluded, no fake node to defer onto)
// must come back Infeasible and must not poison the cached basis: the next
// feasible epoch solves fine.
TEST(EpochLpContext, InfeasibleEpochDoesNotPoisonContext) {
  const Scenario s = make_scenario(33);
  EpochLpContext ctx;
  ModelOptions opt;
  opt.epoch_s = 600.0;
  opt.fake_node = false;

  const LpSchedule ok = ctx.solve(s.cluster, s.workload, opt);
  ASSERT_TRUE(ok.optimal());

  ModelOptions dead = opt;
  for (std::size_t m = 0; m < s.cluster.machine_count(); ++m)
    dead.excluded_machines.push_back(m);
  const LpSchedule bad = ctx.solve(s.cluster, s.workload, dead);
  EXPECT_EQ(bad.status, lp::SolveStatus::Infeasible);

  const LpSchedule ok2 = ctx.solve(s.cluster, s.workload, opt);
  ASSERT_TRUE(ok2.optimal());
  EXPECT_NEAR(ok2.objective_mc.mc(), ok.objective_mc.mc(),
              1e-5 * (1.0 + ok.objective_mc.mc()));
}

// invalidate() forgets the cached model and basis.
TEST(EpochLpContext, InvalidateForcesColdRebuild) {
  const Scenario s = make_scenario(34);
  EpochLpContext ctx;
  const ModelOptions opt = online_options(s, 0);
  ASSERT_TRUE(ctx.solve(s.cluster, s.workload, opt).optimal());
  ctx.invalidate();
  const LpSchedule again = ctx.solve(s.cluster, s.workload, opt);
  ASSERT_TRUE(again.optimal());
  EXPECT_FALSE(again.model_reused);
  EXPECT_FALSE(again.warm_start_used);
  EXPECT_EQ(ctx.stats().builds, 2u);
}

// Candidate pruning makes the column set depend on prices/origins, so the
// delta path must refuse to reuse the cached skeleton (correctness first).
TEST(EpochLpContext, PrunedModelsNeverReuseSkeleton) {
  const Scenario s = make_scenario(35);
  EpochLpContext ctx;
  for (std::size_t epoch = 0; epoch < 3; ++epoch) {
    ModelOptions opt = online_options(s, epoch);
    opt.max_candidate_machines = 3;
    opt.max_candidate_stores = 3;
    const LpSchedule inc =
        ctx.solve(s.cluster, s.workload, opt, {}, remaining_at(s, epoch));
    const LpSchedule cold = solve_co_scheduling(s.cluster, s.workload, opt, {},
                                                remaining_at(s, epoch));
    ASSERT_EQ(inc.status, cold.status) << "epoch " << epoch;
    EXPECT_FALSE(inc.model_reused) << "epoch " << epoch;
    if (inc.optimal() && cold.optimal()) {
      EXPECT_NEAR(inc.objective_mc.mc(), cold.objective_mc.mc(),
                  1e-5 * (1.0 + cold.objective_mc.mc()))
          << "epoch " << epoch;
    }
  }
  EXPECT_EQ(ctx.stats().model_reuses, 0u);
}

}  // namespace
}  // namespace lips::core
