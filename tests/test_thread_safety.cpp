// Threaded stress tests for the types the sim farm will share — the
// executable spec for DESIGN.md §12 (concurrency readiness).
//
// Each test hammers one shared (or per-thread / per-resource) type from
// several threads and asserts the documented contract:
//   * MetricRegistry — relaxed CAS adds lose nothing: integral deltas sum
//     exactly; registration races return the same instrument; snapshots
//     taken mid-run never tear an instrument;
//   * Tracer — the clock read inside the critical section keeps "append
//     order == timestamp order" under concurrency; B/E records stay
//     balanced; ring wrap accounting stays exact;
//   * CheckpointDir — distinct directories are safely concurrent
//     (per-resource role);
//   * Rng — split() streams drawn on worker threads reproduce the serial
//     draws bit-exactly (per-thread role).
//
// These tests pass under the plain build but earn their keep under
// `-DLIPS_SANITIZE=thread`: the CI tsan lane runs them so every lock and
// atomic contract above is checked against real interleavings.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "ckpt/store.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

namespace fs = std::filesystem;
using lips::Rng;
using lips::ckpt::CheckpointDir;
using lips::ckpt::Snapshot;
using lips::obs::MetricRegistry;
using lips::obs::Span;
using lips::obs::TraceRecord;
using lips::obs::Tracer;

constexpr std::size_t kThreads = 8;

/// Launch `n` workers running `fn(tid)` and join them all.
template <typename F>
void run_threads(std::size_t n, F fn) {
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::size_t t = 0; t < n; ++t) workers.emplace_back(fn, t);
  for (auto& w : workers) w.join();
}

/// Fresh (empty) per-test scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& tag) {
  const fs::path p = fs::path(::testing::TempDir()) / ("lips_tsan_" + tag);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

// --------------------------------------------------- MetricRegistry ------

TEST(ThreadSafetyMetrics, CounterSumsExactlyAcrossThreads) {
  constexpr std::size_t kIncs = 10'000;
  MetricRegistry reg;
  auto& hits = reg.counter("farm_hits_total");
  run_threads(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kIncs; ++i) hits.inc();
  });
  // Integral deltas through the CAS loop lose nothing: the sum is exact,
  // not approximate (80000 is far below 2^53).
  EXPECT_EQ(hits.value(), static_cast<double>(kThreads * kIncs));
}

TEST(ThreadSafetyMetrics, RegistrationRaceYieldsOneInstrument) {
  constexpr std::size_t kIncs = 2'000;
  MetricRegistry reg;
  std::array<lips::obs::Counter*, kThreads> handles{};
  run_threads(kThreads, [&](std::size_t tid) {
    // Every thread registers the same series concurrently, then hammers
    // whatever handle it got back.
    auto& c = reg.counter("farm_shared_total", {{"pool", "workers"}});
    handles[tid] = &c;
    for (std::size_t i = 0; i < kIncs; ++i) c.inc();
  });
  for (std::size_t t = 1; t < kThreads; ++t)
    EXPECT_EQ(handles[t], handles[0]) << "registration race forked a series";
  EXPECT_EQ(handles[0]->value(), static_cast<double>(kThreads * kIncs));
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(ThreadSafetyMetrics, HistogramBucketsAndSumStayExact) {
  constexpr std::size_t kObs = 400;  // divisible by 4: one value per bucket
  MetricRegistry reg;
  auto& h = reg.histogram("farm_latency_s", {0.5, 1.5, 2.5});
  run_threads(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kObs; ++i)
      h.observe(static_cast<double>(i % 4));  // 0,1,2 → buckets; 3 → +Inf
  });
  const std::uint64_t per_bucket = kThreads * kObs / 4;
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(h.bucket_count(b), per_bucket);
  EXPECT_EQ(h.total_count(), kThreads * kObs);
  // Sum of one 0+1+2+3 cycle is 6; all integral, so exact.
  EXPECT_EQ(h.sum(), static_cast<double>(kThreads * kObs / 4 * 6));
}

TEST(ThreadSafetyMetrics, SnapshotReaderRacesWritersWithoutTearing) {
  constexpr std::size_t kIncs = 5'000;
  MetricRegistry reg;
  std::atomic<bool> done{false};
  const double expected = static_cast<double>(kThreads * kIncs);

  std::thread reader([&] {
    // Snapshot continuously while writers register and increment. Values
    // are per-instrument atomic: anything outside [0, expected] is a torn
    // read, and series must only ever accumulate.
    std::size_t last_series = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = reg.snapshot();
      EXPECT_GE(snap.size(), last_series);
      last_series = snap.size();
      for (const auto& s : snap) {
        EXPECT_GE(s.value, 0.0);
        EXPECT_LE(s.value, expected);
      }
    }
  });

  run_threads(kThreads, [&](std::size_t tid) {
    auto& mine =
        reg.counter("farm_worker_total", {{"tid", std::to_string(tid)}});
    auto& all = reg.counter("farm_all_total");
    for (std::size_t i = 0; i < kIncs; ++i) {
      mine.inc();
      all.inc();
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), kThreads + 1);
  double total = 0.0;
  for (const auto& s : snap)
    if (s.name == "farm_worker_total") total += s.value;
  EXPECT_EQ(total, expected);
}

// ------------------------------------------------------------ Tracer ------

TEST(ThreadSafetyTracer, ConcurrentSpansStayBalancedAndOrdered) {
  constexpr std::size_t kSpans = 200;
  Tracer tracer(1 << 13);  // big enough: nothing overwritten
  run_threads(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kSpans; ++i) {
      Span span(&tracer, "work", "farm");
      tracer.instant("tick", "farm", "i", static_cast<double>(i));
    }
  });
  // Span = one B + one E, plus one instant each iteration.
  const std::uint64_t expected = kThreads * kSpans * 3;
  EXPECT_EQ(tracer.total_recorded(), expected);
  EXPECT_EQ(tracer.size(), expected);
  EXPECT_EQ(tracer.overwritten(), 0u);

  std::uint64_t last_ts = 0;
  std::size_t begins = 0, ends = 0, instants = 0;
  tracer.for_each([&](const TraceRecord& r) {
    EXPECT_GE(r.ts_us, last_ts) << "append order != timestamp order";
    last_ts = r.ts_us;
    if (r.phase == 'B') ++begins;
    if (r.phase == 'E') ++ends;
    if (r.phase == 'i') ++instants;
  });
  EXPECT_EQ(begins, kThreads * kSpans);
  EXPECT_EQ(ends, kThreads * kSpans);
  EXPECT_EQ(instants, kThreads * kSpans);
}

TEST(ThreadSafetyTracer, RingWrapAccountingIsExactUnderContention) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::size_t kEvents = 500;
  Tracer tracer(kCapacity);
  run_threads(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kEvents; ++i) tracer.instant("e", "farm");
  });
  const std::uint64_t total = kThreads * kEvents;
  EXPECT_EQ(tracer.total_recorded(), total);
  EXPECT_EQ(tracer.size(), kCapacity);
  EXPECT_EQ(tracer.overwritten(), total - kCapacity);
}

TEST(ThreadSafetyTracer, EnableToggleRacesRecordersSafely) {
  constexpr std::size_t kEvents = 2'000;
  Tracer tracer(1 << 15);
  std::atomic<bool> done{false};
  std::thread toggler([&] {
    // Flip the advisory enable flag as fast as possible; racing records
    // may land on either side of a flip but must never tear or deadlock.
    bool on = false;
    while (!done.load(std::memory_order_acquire)) {
      tracer.set_enabled(on);
      on = !on;
    }
    tracer.set_enabled(true);
  });
  run_threads(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kEvents; ++i) tracer.instant("e", "farm");
  });
  done.store(true, std::memory_order_release);
  toggler.join();
  // Every record either landed whole or was skipped whole.
  EXPECT_LE(tracer.total_recorded(), kThreads * kEvents);
  std::uint64_t last_ts = 0;
  tracer.for_each([&](const TraceRecord& r) {
    EXPECT_GE(r.ts_us, last_ts);
    last_ts = r.ts_us;
  });
}

// ----------------------------------------------------- CheckpointDir ------

TEST(ThreadSafetyCkpt, DistinctDirectoriesWriteConcurrently) {
  constexpr std::size_t kSnapshots = 5;
  const std::string root = scratch_dir("distinct_dirs");
  run_threads(kThreads, [&](std::size_t tid) {
    // Per-resource role: each worker owns its directory outright, exactly
    // how the farm checkpoints seeded runs side by side.
    CheckpointDir dir(root + "/worker-" + std::to_string(tid));
    for (std::size_t k = 1; k <= kSnapshots; ++k) {
      Snapshot s;
      s.meta.label = "worker-" + std::to_string(tid);
      s.meta.sim_time_s = static_cast<double>(k);
      s.meta.epoch = k;
      s.meta.sequence = k;
      s.payload = {static_cast<std::uint8_t>(tid),
                   static_cast<std::uint8_t>(k)};
      dir.write(s);
    }
  });
  // Every directory recovered independently: newest sequence, own payload.
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    CheckpointDir dir(root + "/worker-" + std::to_string(tid));
    std::vector<CheckpointDir::Skipped> skipped;
    const auto latest = dir.load_latest(&skipped);
    ASSERT_TRUE(latest.has_value()) << "worker " << tid;
    EXPECT_TRUE(skipped.empty());
    EXPECT_EQ(latest->meta.sequence, kSnapshots);
    EXPECT_EQ(latest->meta.label, "worker-" + std::to_string(tid));
    ASSERT_EQ(latest->payload.size(), 2u);
    EXPECT_EQ(latest->payload[0], static_cast<std::uint8_t>(tid));
    EXPECT_EQ(latest->payload[1], static_cast<std::uint8_t>(kSnapshots));
  }
}

// --------------------------------------------------------------- Rng ------

TEST(ThreadSafetyRng, SplitStreamsReproduceSerialDrawsExactly) {
  constexpr std::size_t kDraws = 1'000;
  constexpr std::uint64_t kSeed = 123;

  // Serial reference: split kThreads children in order, drain each.
  std::array<std::uint64_t, kThreads> expected{};
  {
    Rng parent(kSeed);
    std::vector<Rng> children;
    for (std::size_t t = 0; t < kThreads; ++t) children.push_back(parent.split());
    for (std::size_t t = 0; t < kThreads; ++t)
      for (std::size_t i = 0; i < kDraws; ++i) expected[t] += children[t].next();
  }

  // Concurrent run: same split order (splitting is the serial phase), each
  // child drained on its own thread — per-thread ownership means scheduling
  // cannot perturb any stream.
  std::array<std::uint64_t, kThreads> got{};
  {
    Rng parent(kSeed);
    std::vector<Rng> children;
    for (std::size_t t = 0; t < kThreads; ++t) children.push_back(parent.split());
    run_threads(kThreads, [&](std::size_t tid) {
      for (std::size_t i = 0; i < kDraws; ++i) got[tid] += children[tid].next();
    });
  }
  EXPECT_EQ(got, expected);
}

}  // namespace
