// Tests for the LiPS core: break-even analysis, the three LP scheduling
// models (paper Figs. 2–4), candidate pruning, rounding, and the analytic
// baselines. Small instances are verified against hand-computed optima;
// properties (constraint satisfaction, lower-bound dominance) are checked on
// randomized instances.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/baseline_cost.hpp"
#include "core/breakeven.hpp"
#include "core/lp_models.hpp"
#include "core/rounding.hpp"
#include "workload/workload.hpp"

namespace lips::core {
namespace {

using cluster::Cluster;
using workload::Workload;

// Two machines in separate zones: src (expensive CPU) and dst (cheap CPU),
// each with a co-located store. Cross-zone transfers are billed.
Cluster two_node_cluster(UsdPerCpuSec src_price_mc, UsdPerCpuSec dst_price_mc,
                         double src_tp = 1.0, double dst_tp = 1.0,
                         double uptime_s = 1.0e9) {
  Cluster c;
  const ZoneId za = c.add_zone("a");
  const ZoneId zb = c.add_zone("b");
  auto add = [&](ZoneId z, UsdPerCpuSec price, double tp) {
    cluster::Machine m;
    m.name = "m" + std::to_string(c.machine_count());
    m.zone = z;
    m.cpu_price_mc = price;
    m.throughput_ecu = tp;
    m.uptime_s = uptime_s;
    const MachineId id = c.add_machine(std::move(m));
    cluster::DataStore s;
    s.name = "s" + std::to_string(c.store_count());
    s.zone = z;
    s.capacity_mb = 1.0e9;
    s.colocated_machine = id.value();
    c.add_store(std::move(s));
  };
  add(za, src_price_mc, src_tp);
  add(zb, dst_price_mc, dst_tp);
  c.finalize();
  return c;
}

// One job with `cpu_s_per_mb` intensity over a data object of `mb` MB that
// originates on store 0 (the expensive node's store).
Workload one_job_workload(double cpu_s_per_mb, double mb,
                          std::size_t tasks = 10) {
  Workload w;
  const DataId d = w.add_data({"d", mb, StoreId{0}});
  workload::Job j;
  j.name = "job";
  j.tcp_cpu_s_per_mb = cpu_s_per_mb;
  j.data = {d};
  j.num_tasks = tasks;
  w.add_job(std::move(j));
  return w;
}

// ------------------------------------------------------------ breakeven ---

TEST(BreakEven, PaperRule) {
  // c*a > c*b + d → move.
  BreakEvenInput in;
  in.cpu_s_per_mb = CpuSecPerMb::ecu_s_per_mb(2.0);
  in.src_price_mc = UsdPerCpuSec::mc_per_ecu_s(5.0);
  in.dst_price_mc = UsdPerCpuSec::mc_per_ecu_s(1.0);
  in.transfer_cost_mc_per_mb = McPerMb::mc_per_mb(7.0);
  EXPECT_DOUBLE_EQ(move_savings_mc_per_mb(in).mc_per_mb(),
                   2.0 * 5 - (2.0 * 1 + 7));  // 1
  EXPECT_TRUE(should_move_data(in));
  in.transfer_cost_mc_per_mb = McPerMb::mc_per_mb(9.0);
  EXPECT_FALSE(should_move_data(in));
}

TEST(BreakEven, RatioBelowOneIffMovePays) {
  BreakEvenInput in;
  in.cpu_s_per_mb = CpuSecPerMb::ecu_s_per_mb(1.4);
  in.src_price_mc = UsdPerCpuSec::mc_per_ecu_s(6.0);
  in.dst_price_mc = UsdPerCpuSec::mc_per_ecu_s(1.0);
  for (double d = 0.0; d < 14.0; d += 0.5) {
    in.transfer_cost_mc_per_mb = McPerMb::mc_per_mb(d);
    EXPECT_EQ(should_move_data(in), transfer_to_savings_ratio(in) < 1.0)
        << "d=" << d;
  }
}

TEST(BreakEven, NoCpuSavingsMeansNeverMove) {
  BreakEvenInput in;
  in.cpu_s_per_mb = CpuSecPerMb::ecu_s_per_mb(100.0);
  in.src_price_mc = UsdPerCpuSec::mc_per_ecu_s(1.0);
  in.dst_price_mc = UsdPerCpuSec::mc_per_ecu_s(1.0);  // no savings
  in.transfer_cost_mc_per_mb = McPerMb::mc_per_mb(0.001);
  EXPECT_FALSE(should_move_data(in));
  EXPECT_TRUE(std::isinf(transfer_to_savings_ratio(in)));
}

TEST(BreakEven, CpuIntensiveJobsMoveIoBoundStay) {
  // The Fig-1 insight with real numbers: m1.medium → c1.medium, inter-zone
  // transfer at 62.5/64 m¢/MB. Pi (infinite intensity) always moves;
  // Grep (20 s/block) stays put at that price gap only when the transfer
  // outweighs 20/64 s/MB × ~4.5 m¢ of savings — check both regimes.
  const UsdPerCpuSec src = cluster::m1_medium().cpu_price_mid_mc();  // ~5.4
  const UsdPerCpuSec dst = cluster::c1_medium().cpu_price_mid_mc();  // ~1.1
  BreakEvenInput grep{CpuSecPerMb::ecu_s_per_mb(20.0 / 64.0), src, dst,
                      Cluster::kInterZoneCostMcPerMB};
  BreakEvenInput wordcount{CpuSecPerMb::ecu_s_per_mb(90.0 / 64.0), src, dst,
                           Cluster::kInterZoneCostMcPerMB};
  // WordCount's savings per MB exceed Grep's ~4.5×.
  EXPECT_GT(move_savings_mc_per_mb(wordcount), move_savings_mc_per_mb(grep));
  EXPECT_TRUE(should_move_data(wordcount));
  EXPECT_TRUE(should_move_data(grep));  // at ~1 m¢/MB transfer, even Grep moves
  // Raise the transfer price 4× (to ~3.9 m¢/MB): Grep's ~1.3 m¢/MB of CPU
  // savings no longer cover it, WordCount's ~6.1 m¢/MB still do.
  grep.transfer_cost_mc_per_mb *= 4;
  wordcount.transfer_cost_mc_per_mb *= 4;
  EXPECT_FALSE(should_move_data(grep));
  EXPECT_TRUE(should_move_data(wordcount));
}

// ----------------------------------------------- offline simple (Fig 2) ---

FixedPlacement all_at_origin(const Workload& w) {
  FixedPlacement p(w.data_count());
  for (std::size_t i = 0; i < w.data_count(); ++i)
    p[i].push_back({DataId{i}, w.data(DataId{i}).origin, 1.0});
  return p;
}

TEST(OfflineSimple, RunsLocallyWhenTransferTooDear) {
  // I/O-bound job (low cpu/MB): reading remotely costs more than the CPU
  // gap saves → stay on the expensive source node.
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(0.1, 640.0);  // 64 ECU-s total
  const LpSchedule s = solve_offline_simple(c, w, all_at_origin(w));
  ASSERT_TRUE(s.optimal());
  // local: 64 ECU-s × 5 = 320 m¢. remote: 64 × 1 + 640 MB × 0.9766 = 689.
  EXPECT_NEAR(s.objective_mc.mc(), 320.0, 1e-6);
  ASSERT_EQ(s.portions.size(), 1u);
  EXPECT_EQ(s.portions[0].machine, MachineId{0});
  EXPECT_NEAR(s.portions[0].fraction, 1.0, 1e-9);
}

TEST(OfflineSimple, ReadsRemotelyWhenCpuGapDominates) {
  // CPU-bound job: 10 ECU-s/MB × 640 MB = 6400 ECU-s.
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(10.0, 640.0);
  const LpSchedule s = solve_offline_simple(c, w, all_at_origin(w));
  ASSERT_TRUE(s.optimal());
  // local: 6400×5 = 32000. remote read: 6400×1 + 640×62.5/64 = 7025.
  EXPECT_NEAR(s.objective_mc.mc(),
              6400.0 + 640.0 * Cluster::kInterZoneCostMcPerMB.mc_per_mb(),
              1e-6);
  ASSERT_EQ(s.portions.size(), 1u);
  EXPECT_EQ(s.portions[0].machine, MachineId{1});
  EXPECT_EQ(*s.portions[0].store, StoreId{0});
}

TEST(OfflineSimple, CapacityForcesSplit) {
  // Cheap machine can only fit half the job in its uptime → the LP must
  // split 50/50 (greedy "all on cheapest" would be infeasible).
  Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0), 1.0, 1.0, /*uptime=*/320.0);
  const Workload w = one_job_workload(1.0, 640.0);  // 640 ECU-s
  const LpSchedule s = solve_offline_simple(c, w, all_at_origin(w));
  ASSERT_TRUE(s.optimal());
  double on_cheap = 0.0, on_dear = 0.0;
  for (const TaskPortion& p : s.portions) {
    if (p.machine == MachineId{1}) on_cheap += p.fraction;
    else on_dear += p.fraction;
  }
  EXPECT_NEAR(on_cheap, 0.5, 1e-6);
  EXPECT_NEAR(on_dear, 0.5, 1e-6);
}

TEST(OfflineSimple, InfeasibleWhenClusterTooSmall) {
  Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0), 1.0, 1.0, /*uptime=*/10.0);
  const Workload w = one_job_workload(1.0, 640.0);  // needs 640 ECU-s
  const LpSchedule s = solve_offline_simple(c, w, all_at_origin(w));
  EXPECT_EQ(s.status, lp::SolveStatus::Infeasible);
}

TEST(OfflineSimple, SplitPlacementBoundsReads) {
  // Data is 30% on store 0, 70% on store 1; constraint (3) caps the portion
  // of the job reading from each store accordingly.
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(1.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));  // equal prices
  const Workload w = one_job_workload(1.0, 100.0);
  FixedPlacement p(1);
  p[0].push_back({DataId{0}, StoreId{0}, 0.3});
  p[0].push_back({DataId{0}, StoreId{1}, 0.7});
  const LpSchedule s = solve_offline_simple(c, w, p);
  ASSERT_TRUE(s.optimal());
  std::map<std::size_t, double> read_from;
  for (const TaskPortion& tp : s.portions)
    read_from[tp.store->value()] += tp.fraction;
  EXPECT_LE(read_from[0], 0.3 + 1e-6);
  EXPECT_LE(read_from[1], 0.7 + 1e-6);
  // Cheapest schedule reads each share locally → zero transfer cost.
  EXPECT_NEAR(s.objective_mc.mc(), 100.0 * 1.0, 1e-6);
}

// --------------------------------------------- co-scheduling (Fig 3) ------

TEST(CoScheduling, MovesDataForCpuIntensiveJob) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(10.0, 640.0);
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  // Best: move data to store 1 (640 MB × 0.9766 = 625 m¢), run locally on
  // the cheap node (6400 × 1). Total 7025 — same as remote read here, but
  // the model may pick either; objective must equal 7025.
  EXPECT_NEAR(s.objective_mc.mc(), 7025.0, 1e-6);
}

TEST(CoScheduling, KeepsDataForIoBoundJob) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(0.1, 640.0);
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_mc.mc(), 320.0, 1e-6);  // stay local on source
  // Data remains fully at its origin.
  double at_origin = 0.0;
  for (const DataPlacement& p : s.placements)
    if (p.store == StoreId{0}) at_origin += p.fraction;
  EXPECT_NEAR(at_origin, 1.0, 1e-6);
  EXPECT_NEAR(s.placement_transfer_mc.mc(), 0.0, 1e-9);
}

TEST(CoScheduling, NeverWorseThanFixedPlacement) {
  // Joint optimization dominates the Fig-2 model with data pinned at the
  // origin — on any instance.
  Rng rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    const Cluster c =
        two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(rng.uniform(1, 10)),
                         UsdPerCpuSec::mc_per_ecu_s(rng.uniform(0.1, 5)));
    const Workload w =
        one_job_workload(rng.uniform(0.05, 20), rng.uniform(64, 2048));
    const LpSchedule fixed = solve_offline_simple(c, w, all_at_origin(w));
    const LpSchedule joint = solve_co_scheduling(c, w);
    ASSERT_TRUE(fixed.optimal());
    ASSERT_TRUE(joint.optimal());
    EXPECT_LE(joint.objective_mc.mc(), fixed.objective_mc.mc() + 1e-6)
        << "trial " << trial;
  }
}

TEST(CoScheduling, StoreCapacityRespected) {
  // Cheap node's store too small to hold the data → placement must stay at
  // the origin even though the job prefers cheap CPU.
  Cluster c;
  const ZoneId za = c.add_zone("a");
  const ZoneId zb = c.add_zone("b");
  cluster::Machine m0;
  m0.name = "dear";
  m0.zone = za;
  m0.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(5.0);
  m0.uptime_s = 1e9;
  c.add_machine(m0);
  cluster::Machine m1;
  m1.name = "cheap";
  m1.zone = zb;
  m1.cpu_price_mc = UsdPerCpuSec::mc_per_ecu_s(1.0);
  m1.uptime_s = 1e9;
  c.add_machine(m1);
  c.add_store({"s0", za, 1.0e9, 0});
  c.add_store({"s1-small", zb, 100.0, 1});  // cannot hold 640 MB
  c.finalize();
  const Workload w = one_job_workload(10.0, 640.0);
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  for (const DataPlacement& p : s.placements) {
    if (p.store == StoreId{1}) {
      EXPECT_LE(p.fraction * 640.0, 100.0 + 1e-6);
    }
  }
  // Verify the decoded schedule satisfies the linking constraint: reads
  // from a store never exceed the fraction placed there.
  std::map<std::size_t, double> placed, read;
  for (const DataPlacement& p : s.placements) placed[p.store.value()] += p.fraction;
  for (const TaskPortion& tp : s.portions) read[tp.store->value()] += tp.fraction;
  for (const auto& [store, f] : read)
    EXPECT_LE(f, placed[store] + 1e-6) << "store " << store;
}

TEST(CoScheduling, EveryDataPlacedEveryJobScheduled) {
  const Cluster c = cluster::make_ec2_cluster(6, 0.5, 3);
  Rng rng(77);
  workload::RandomWorkloadParams p;
  p.n_tasks = 60;
  const Workload w = workload::make_random_workload(p, c, rng);
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  std::vector<double> placed(w.data_count(), 0.0);
  for (const DataPlacement& dp : s.placements) placed[dp.data.value()] += dp.fraction;
  for (std::size_t i = 0; i < w.data_count(); ++i)
    EXPECT_GE(placed[i], 1.0 - 1e-6) << "data " << i;
  std::vector<double> sched(w.job_count(), 0.0);
  for (const TaskPortion& tp : s.portions) sched[tp.job.value()] += tp.fraction;
  for (std::size_t k = 0; k < w.job_count(); ++k)
    EXPECT_GE(sched[k], 1.0 - 1e-6) << "job " << k;
}

TEST(CoScheduling, SolversAgree) {
  const Cluster c = cluster::make_ec2_cluster(5, 0.4, 2);
  Rng rng(88);
  workload::RandomWorkloadParams p;
  p.n_tasks = 40;
  const Workload w = workload::make_random_workload(p, c, rng);
  ModelOptions dense;
  dense.solver = lp::SolverKind::DenseSimplex;
  ModelOptions revised;
  revised.solver = lp::SolverKind::RevisedSimplex;
  const LpSchedule a = solve_co_scheduling(c, w, dense);
  const LpSchedule b = solve_co_scheduling(c, w, revised);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective_mc.mc(), b.objective_mc.mc(),
              1e-4 * (1.0 + a.objective_mc.mc()));
}

TEST(CoScheduling, CostBreakdownSumsToObjective) {
  const Cluster c = cluster::make_ec2_cluster(6, 0.5, 3);
  Rng rng(99);
  workload::RandomWorkloadParams p;
  p.n_tasks = 50;
  const Workload w = workload::make_random_workload(p, c, rng);
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(
      (s.placement_transfer_mc + s.execution_mc + s.runtime_transfer_mc).mc(),
      s.objective_mc.mc(), 1e-4 * (1.0 + s.objective_mc.mc()));
}

TEST(CoScheduling, InputFreeJobRunsOnCheapestMachine) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  Workload w;
  workload::Job pi;
  pi.name = "pi";
  pi.cpu_fixed_ecu_s = 1000.0;
  pi.num_tasks = 4;
  w.add_job(std::move(pi));
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_mc.mc(), 1000.0, 1e-6);  // all on the 1 m¢ machine
  ASSERT_EQ(s.portions.size(), 1u);
  EXPECT_EQ(s.portions[0].machine, MachineId{1});
  EXPECT_FALSE(s.portions[0].store.has_value());
}

TEST(CoScheduling, PruningPreservesOptimumWhenGenerous) {
  const Cluster c = cluster::make_ec2_cluster(8, 0.5, 3);
  Rng rng(111);
  workload::RandomWorkloadParams wp;
  wp.n_tasks = 40;
  const Workload w = workload::make_random_workload(wp, c, rng);
  const LpSchedule exact = solve_co_scheduling(c, w);
  ModelOptions pruned;
  pruned.max_candidate_machines = 8;  // = all machines
  pruned.max_candidate_stores = 8;    // = all stores
  const LpSchedule same = solve_co_scheduling(c, w, pruned);
  ASSERT_TRUE(exact.optimal());
  ASSERT_TRUE(same.optimal());
  EXPECT_NEAR(exact.objective_mc.mc(), same.objective_mc.mc(),
              1e-5 * (1.0 + exact.objective_mc.mc()));
}

TEST(CoScheduling, PruningGivesUpperBound) {
  const Cluster c = cluster::make_ec2_cluster(10, 0.5, 3);
  Rng rng(222);
  workload::RandomWorkloadParams wp;
  wp.n_tasks = 60;
  const Workload w = workload::make_random_workload(wp, c, rng);
  const LpSchedule exact = solve_co_scheduling(c, w);
  ModelOptions pruned;
  pruned.max_candidate_machines = 2;
  pruned.max_candidate_stores = 2;
  const LpSchedule approx = solve_co_scheduling(c, w, pruned);
  ASSERT_TRUE(exact.optimal());
  ASSERT_TRUE(approx.optimal());
  EXPECT_GE(approx.objective_mc.mc(), exact.objective_mc.mc() - 1e-6);
  // Pruned model must be dramatically smaller.
  EXPECT_LT(approx.lp_variables, exact.lp_variables);
}

// ------------------------------------------------ online model (Fig 4) ----

TEST(OnlineModel, FakeNodeDefersOverflow) {
  // Epoch capacity: 2 machines × 1 ECU × 100 s = 200 ECU-s; job needs 640.
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(1.0, 640.0);
  ModelOptions opt;
  opt.epoch_s = 100.0;
  opt.fake_node = true;
  opt.bandwidth_rows = false;
  const LpSchedule s = solve_co_scheduling(c, w, opt);
  ASSERT_TRUE(s.optimal());
  ASSERT_EQ(s.deferred_fraction.size(), 1u);
  // At most 200/640 of the job fits this epoch.
  EXPECT_NEAR(s.deferred_fraction[0], 1.0 - 200.0 / 640.0, 1e-6);
}

TEST(OnlineModel, WithoutFakeNodeOverflowIsInfeasible) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(1.0, 640.0);
  ModelOptions opt;
  opt.epoch_s = 100.0;
  opt.fake_node = false;
  opt.bandwidth_rows = false;
  EXPECT_EQ(solve_co_scheduling(c, w, opt).status,
            lp::SolveStatus::Infeasible);
}

TEST(OnlineModel, NoDeferralWhenEpochSuffices) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(1.0, 640.0);
  ModelOptions opt;
  opt.epoch_s = 10000.0;
  opt.fake_node = true;
  const LpSchedule s = solve_co_scheduling(c, w, opt);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.deferred_fraction[0], 0.0, 1e-6);
}

TEST(OnlineModel, BandwidthRowLimitsDataHeavyAssignment) {
  // Constraint (21): a machine whose link can only move 10 MB in the epoch
  // cannot be assigned a portion requiring more transfer.
  Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  // Slow down every link to 0.1 MB/s.
  for (std::size_t l = 0; l < c.machine_count(); ++l)
    for (std::size_t s = 0; s < c.store_count(); ++s)
      c.set_bandwidth_mb_s(MachineId{l}, StoreId{s}, BytesPerSec::mb_per_s(0.1));
  const Workload w = one_job_workload(10.0, 640.0);
  ModelOptions opt;
  opt.epoch_s = 320.0;  // plenty of CPU but only 32 MB per link-epoch
  opt.fake_node = true;
  opt.bandwidth_rows = true;
  const LpSchedule s = solve_co_scheduling(c, w, opt);
  ASSERT_TRUE(s.optimal());
  // Each (job, machine) pair can transfer at most 32 MB = 5% of 640 MB;
  // two machines → at most 10% scheduled, rest deferred.
  EXPECT_GE(s.deferred_fraction[0], 0.9 - 1e-6);
}

TEST(OnlineModel, EpochCapsCapacityTighterThanUptime) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(2.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));  // uptime 1e9 s
  const Workload w = one_job_workload(1.0, 640.0);
  ModelOptions offline;
  const LpSchedule off = solve_co_scheduling(c, w, offline);
  ModelOptions online;
  online.epoch_s = 400.0;  // 400 ECU-s per machine < 640 total demand
  online.fake_node = true;
  online.bandwidth_rows = false;
  const LpSchedule on = solve_co_scheduling(c, w, online);
  ASSERT_TRUE(off.optimal());
  ASSERT_TRUE(on.optimal());
  // Offline puts everything on the cheap node; online must split (spill to
  // the dear node) or defer — cost per scheduled unit can only rise.
  EXPECT_NEAR(off.objective_mc.mc(), 640.0 + 625.0,
              1.0);  // move data + cheap CPU
  double scheduled = 0.0;
  for (const TaskPortion& p : on.portions) scheduled += p.fraction;
  EXPECT_GT(scheduled, 0.0);
}

// ----------------------------------------------------------- rounding -----

TEST(Rounding, PreservesTaskTotals) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0), 1.0, 1.0, /*uptime=*/320.0);
  const Workload w = one_job_workload(1.0, 640.0, /*tasks=*/10);
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  const RoundedSchedule r = round_schedule(c, w, s);
  std::size_t total = 0;
  for (const TaskBundle& b : r.bundles) total += b.tasks;
  EXPECT_EQ(total, 10u);
}

TEST(Rounding, CostIsAboveLpLowerBound) {
  const Cluster c = cluster::make_ec2_cluster(6, 0.5, 3);
  Rng rng(333);
  workload::RandomWorkloadParams p;
  p.n_tasks = 50;
  p.tasks_per_job = 7;
  const Workload w = workload::make_random_workload(p, c, rng);
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  const RoundedSchedule r = round_schedule(c, w, s);
  EXPECT_GE(r.cost_mc.mc(), r.lp_lower_bound_mc.mc() - 1e-6);
  // The gap should be small relative to total cost (jobs are 7-10 tasks).
  EXPECT_LT(r.rounding_gap_mc().mc(), 0.5 * r.lp_lower_bound_mc.mc() + 1e-6);
}

TEST(Rounding, BundleAccountingConsistent) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(3.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0), 1.0, 1.0, /*uptime=*/500.0);
  const Workload w = one_job_workload(1.0, 640.0, /*tasks=*/8);
  const LpSchedule s = solve_co_scheduling(c, w);
  ASSERT_TRUE(s.optimal());
  const RoundedSchedule r = round_schedule(c, w, s);
  for (const TaskBundle& b : r.bundles) {
    EXPECT_NEAR(b.fraction, static_cast<double>(b.tasks) / 8.0, 1e-9);
    EXPECT_NEAR(b.input_mb, b.fraction * 640.0, 1e-6);
    EXPECT_NEAR(b.cpu_ecu_s, b.fraction * 640.0, 1e-6);
  }
}

TEST(Rounding, RejectsNonOptimalSchedule) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(1.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(1.0, 64.0);
  LpSchedule bad;
  bad.status = lp::SolveStatus::Infeasible;
  EXPECT_THROW(round_schedule(c, w, bad), PreconditionError);
}

TEST(Rounding, DeferredWorkGetsFewerTasks) {
  const Cluster c = two_node_cluster(UsdPerCpuSec::mc_per_ecu_s(5.0),
                                     UsdPerCpuSec::mc_per_ecu_s(1.0));
  const Workload w = one_job_workload(1.0, 640.0, /*tasks=*/16);
  ModelOptions opt;
  opt.epoch_s = 100.0;  // fits 200/640
  opt.fake_node = true;
  opt.bandwidth_rows = false;
  const LpSchedule s = solve_co_scheduling(c, w, opt);
  ASSERT_TRUE(s.optimal());
  const RoundedSchedule r = round_schedule(c, w, s);
  std::size_t total = 0;
  for (const TaskBundle& b : r.bundles) total += b.tasks;
  EXPECT_EQ(total, 5u);  // round(16 × 200/640) = 5
}

// ----------------------------------------------------------- baselines ----

TEST(BaselineCost, IdealLocalityMatchesExpectedPrice) {
  // With many tasks, the random-host cost converges to
  // total_cpu × mean(machine price).
  const Cluster c = cluster::make_ec2_cluster(10, 0.5, 2);
  Workload w;
  const DataId d = w.add_data({"d", 64000.0, StoreId{0}});
  workload::Job j;
  j.name = "big";
  j.tcp_cpu_s_per_mb = 1.0;
  j.data = {d};
  j.num_tasks = 1000;
  w.add_job(std::move(j));
  Rng rng(4242);
  const double cost = ideal_locality_cost_mc(c, w, rng).mc();
  const double expected = average_price_cost_mc(c, w).mc();
  EXPECT_NEAR(cost / expected, 1.0, 0.05);
}

TEST(BaselineCost, LipsBeatsIdealLocalityOnAverage) {
  // The Fig-5 methodology compares the LP optimum against the idealized
  // 100%-local schedule over *random* block placement. Individual draws can
  // go either way (a lucky shuffle may land every block on the cheapest
  // node), but on average LiPS must come out cheaper — that average saving
  // is the paper's Fig-5 y-axis.
  Rng rng(515);
  double lips_total = 0.0, baseline_total = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    Rng crng = rng.split();
    cluster::RandomClusterParams cp;
    cp.n_machines = 6;
    cp.n_stores = 6;
    const Cluster c = make_random_cluster(cp, crng);
    workload::RandomWorkloadParams wp;
    wp.n_tasks = 40;
    Rng wrng = rng.split();
    const Workload w = make_random_workload(wp, c, wrng);
    const LpSchedule s = solve_co_scheduling(c, w);
    ASSERT_TRUE(s.optimal()) << "trial " << trial;
    Rng brng = rng.split();
    lips_total += s.objective_mc.mc();
    baseline_total += ideal_locality_cost_mc(c, w, brng).mc();
  }
  EXPECT_LT(lips_total, baseline_total);
}

}  // namespace
}  // namespace lips::core
