// Unit tests for the dimensional quantity system (common/units.hpp):
// conversion round-trips, exponent-composing arithmetic, Fraction clamping,
// and saturation behavior of Millicents accumulation. The complementary
// *negative* guarantee — mixed-dimension arithmetic does not compile — is a
// CMake try_compile check, see tests/compile_fail/.
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace lips {
namespace {

// --- Conversion round-trips ------------------------------------------------

TEST(Units, MoneyRoundTrips) {
  EXPECT_DOUBLE_EQ(Millicents::mc(12345.0).mc(), 12345.0);
  EXPECT_DOUBLE_EQ(Millicents::dollars(1.0).mc(), 100000.0);
  EXPECT_DOUBLE_EQ(Millicents::dollars(0.17).dollars(), 0.17);
  EXPECT_DOUBLE_EQ(Millicents::mc(62.5).dollars(), 62.5 / 100000.0);
}

TEST(Units, DataRoundTrips) {
  EXPECT_DOUBLE_EQ(Bytes::mb(512.0).mb(), 512.0);
  EXPECT_DOUBLE_EQ(Bytes::gb(10.0).mb(), 10240.0);
  EXPECT_DOUBLE_EQ(Bytes::gb(2.5).gb(), 2.5);
  EXPECT_DOUBLE_EQ(Bytes::blocks(3.0).mb(), 192.0);  // 3 × 64 MB
  EXPECT_DOUBLE_EQ(Bytes::mb(96.0).blocks(), 1.5);
}

TEST(Units, TimeRoundTrips) {
  EXPECT_DOUBLE_EQ(Seconds::secs(90.0).secs(), 90.0);
  EXPECT_DOUBLE_EQ(Seconds::hours(2.0).secs(), 7200.0);
  EXPECT_DOUBLE_EQ(Seconds::hours(0.5).hours(), 0.5);
}

TEST(Units, PriceRoundTrips) {
  // Paper footnote 1: c1.medium at $0.17/hr with 5 ECU.
  const UsdPerCpuSec p = UsdPerCpuSec::hourly_dollars(0.17, 5.0);
  EXPECT_DOUBLE_EQ(p.mc_per_ecu_s(), 0.17 * 100000.0 / 3600.0 / 5.0);
  // Paper: "$0.01 per GB (62.5 millicent per 64 MB block)".
  const McPerMb t = McPerMb::dollars_per_gb(0.01);
  EXPECT_DOUBLE_EQ(t.mc_per_block(), 62.5);
  EXPECT_DOUBLE_EQ(McPerMb::mc_per_block(62.5).mc_per_mb(), 62.5 / 64.0);
  EXPECT_DOUBLE_EQ(McPerMb::mc_per_mb(3.5).mc_per_mb(), 3.5);
}

// --- Dimension-composing arithmetic ---------------------------------------

TEST(Units, TransferTimeIsBytesOverBandwidth) {
  const Seconds t = Bytes::mb(640.0) / BytesPerSec::mb_per_s(10.0);
  EXPECT_DOUBLE_EQ(t.secs(), 64.0);
}

TEST(Units, ExecutionCostIsCpuTimesPrice) {
  const Millicents c = CpuSeconds::ecu_s(100.0) * UsdPerCpuSec::mc_per_ecu_s(5.0);
  EXPECT_DOUBLE_EQ(c.mc(), 500.0);
}

TEST(Units, TransferCostIsBytesTimesPrice) {
  const Millicents c = Bytes::blocks(2.0) * McPerMb::mc_per_block(62.5);
  EXPECT_DOUBLE_EQ(c.mc(), 125.0);
}

TEST(Units, BreakEvenIntensityTimesPriceIsTransferPrice) {
  // The paper's break-even: c [ECU-s/MB] × price [m¢/ECU-s] → m¢/MB.
  const McPerMb m = CpuSecPerMb::ecu_s_per_mb(0.3125) *
                    UsdPerCpuSec::mc_per_ecu_s(4.0);
  EXPECT_DOUBLE_EQ(m.mc_per_mb(), 1.25);
}

TEST(Units, SameDimensionRatioIsPlainDouble) {
  const double ratio = Millicents::mc(250.0) / Millicents::mc(1000.0);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  static_assert(std::is_same_v<decltype(Millicents::mc(1.0) /
                                        Millicents::mc(2.0)),
                               double>);
  static_assert(std::is_same_v<decltype(Bytes::mb(1.0) *
                                        McPerMb::mc_per_mb(1.0)),
                               Millicents>);
}

TEST(Units, ScalarInversionFlipsDimension) {
  const auto per_mc = 1.0 / Millicents::mc(4.0);
  EXPECT_DOUBLE_EQ(per_mc.raw(), 0.25);
  // (1/m¢) × m¢ cancels back to a double.
  EXPECT_DOUBLE_EQ(per_mc * Millicents::mc(8.0), 2.0);
}

TEST(Units, AdditionAndScalingStayInDimension) {
  Millicents m = Millicents::mc(10.0);
  m += Millicents::mc(5.0);
  m -= Millicents::mc(3.0);
  m *= 2.0;
  m /= 4.0;
  EXPECT_DOUBLE_EQ(m.mc(), 6.0);
  EXPECT_DOUBLE_EQ((-m).mc(), -6.0);
  EXPECT_DOUBLE_EQ((3.0 * m).mc(), 18.0);
  EXPECT_DOUBLE_EQ((m + m - m).mc(), 6.0);
}

TEST(Units, ComparisonAndStreaming) {
  EXPECT_LT(Millicents::mc(1.0), Millicents::mc(2.0));
  EXPECT_EQ(Millicents::dollars(1.0), Millicents::mc(100000.0));
  EXPECT_GT(Seconds::hours(1.0), Seconds::secs(3599.0));
  std::ostringstream os;
  os << Millicents::mc(42.5);
  EXPECT_EQ(os.str(), "42.5");
}

// --- Fraction --------------------------------------------------------------

TEST(Units, FractionClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(Fraction::of(0.75).value(), 0.75);
  EXPECT_DOUBLE_EQ(Fraction::of(-0.25).value(), 0.0);
  EXPECT_DOUBLE_EQ(Fraction::of(1.5).value(), 1.0);
  EXPECT_DOUBLE_EQ(Fraction::of(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(Fraction::of(1.0).value(), 1.0);
  // LP decode noise just outside the interval clamps, not asserts.
  EXPECT_DOUBLE_EQ(Fraction::of(1.0 + 1e-12).value(), 1.0);
  EXPECT_DOUBLE_EQ(Fraction::of(-1e-12).value(), 0.0);
}

TEST(Units, FractionRejectsNonFinite) {
  EXPECT_DOUBLE_EQ(Fraction::of(std::numeric_limits<double>::quiet_NaN()).value(),
                   0.0);
  EXPECT_DOUBLE_EQ(Fraction::of(std::numeric_limits<double>::infinity()).value(),
                   1.0);
  EXPECT_DOUBLE_EQ(Fraction::of(-std::numeric_limits<double>::infinity()).value(),
                   0.0);
}

TEST(Units, FractionScalesQuantitiesBothWays) {
  const Millicents m = Millicents::mc(200.0);
  EXPECT_DOUBLE_EQ((Fraction::of(0.25) * m).mc(), 50.0);
  EXPECT_DOUBLE_EQ((m * Fraction::of(0.25)).mc(), 50.0);
}

// --- Overflow / saturation -------------------------------------------------

TEST(Units, MillicentsAccumulationSaturatesToInfinity) {
  Millicents total = Millicents::mc(std::numeric_limits<double>::max());
  EXPECT_TRUE(total.finite());
  total += total;  // doubles saturate to +inf rather than wrap
  EXPECT_FALSE(total.finite());
  EXPECT_GT(total, Millicents::mc(std::numeric_limits<double>::max()));
}

TEST(Units, InfinitySentinelComparesAboveEverything) {
  EXPECT_FALSE(Millicents::infinity().finite());
  EXPECT_LT(Millicents::mc(1e300), Millicents::infinity());
  EXPECT_TRUE(Millicents::zero().finite());
  EXPECT_EQ(Millicents{}, Millicents::zero());
}

// --- Legacy scalar helpers (report formatting) -----------------------------

TEST(Units, LegacyScalarHelpersAgreeWithTypedOnes) {
  EXPECT_DOUBLE_EQ(millicents_to_dollars(Millicents::mc(250000.0)),
                   millicents_to_dollars(250000.0));
  EXPECT_DOUBLE_EQ(hourly_dollars_to_millicents_per_ecu_second(0.17, 5.0),
                   UsdPerCpuSec::hourly_dollars(0.17, 5.0).mc_per_ecu_s());
  EXPECT_DOUBLE_EQ(dollars_per_gb_to_millicents_per_mb(0.01),
                   McPerMb::dollars_per_gb(0.01).mc_per_mb());
  EXPECT_DOUBLE_EQ(blocks_to_mb(3.0), Bytes::blocks(3.0).mb());
  EXPECT_DOUBLE_EQ(mb_to_blocks(96.0), Bytes::mb(96.0).blocks());
}

}  // namespace
}  // namespace lips
