// lipsctl — run ad-hoc scheduler comparisons from the command line.
//
// Usage:
//   lipsctl sweep [--cell SPEC]... [--threads N] [--seed S]
//                 [--seeds MAX] [--min-seeds N] [--batch-seeds N]
//                 [--target-halfwidth X] [--out FILE]
//                            (Monte Carlo sweep on the simulation farm —
//                             src/farm. Each --cell is a scenario spec, e.g.
//                             "name=storm,mtbf=3600,sched=delay+lips"
//                             (farm/scenario.hpp vocabulary); every cell
//                             runs across many seeds on worker threads,
//                             bit-identical to a serial sweep, and prints
//                             the savings distribution (mean, p5/p50/p95,
//                             95% CI half-width). The stop rule ends a cell
//                             early once the CI is tighter than
//                             --target-halfwidth. --out writes the
//                             canonical BENCH_sweep.json)
//   lipsctl serve (--socket PATH | --stdio) [--snapshot-dir DIR]
//                 [--queue-capacity N]
//                            (run the lipsd co-scheduler service in-process;
//                             same flags and semantics as the lipsd binary —
//                             src/svc, DESIGN.md §14)
//   lipsctl replay --connect SOCKET [--cell SPEC] [--seed S]
//                  [--session NAME]
//                            (drive the seeded scenario through a running
//                             lipsd over the socket AND in-process, then
//                             assert the schedule digests, cost totals, and
//                             FakeNodeCarry ledger folds are bit-identical;
//                             exit 0 only on a perfect match)
//   lipsctl [--nodes N] [--c1 FRAC] [--small FRAC] [--zones Z]
//           [--workload table4|swim|random] [--jobs N] [--tasks N]
//           [--epoch SECONDS] [--seed S]
//           [--schedulers default,delay,fair,quincy,lips]
//           [--replication R] [--patience FACTOR|off] [--csv]
//           [--faults SPEC]  (inject a fault storm, e.g.
//                             "mtbf=3600,revoke=0.1,seed=7" — sim/faults.hpp;
//                             slowdown=2,slowdown_factor=4 adds stragglers)
//           [--solver-faults SPEC]
//                            (chaos-test the LiPS solver itself, e.g.
//                             "nan=0.2,basis=0.3,budget=0.2,seed=7" —
//                             lp/solver_faults.hpp; applies to the lips
//                             scheduler only and exercises the
//                             graceful-degradation ladder)
//           [--speculation auto|off|naive|cost]
//                            (straggler duplication: auto keeps each
//                             scheduler's paper default — naive for the
//                             Hadoop baselines, off for LiPS)
//           [--no-feedback]  (disable LiPS observed-throughput feedback and
//                             quarantine)
//           [--trace FILE]   (write a per-scheduler event trace as CSV)
//           [--checkpoint-dir DIR]
//                            (crash-consistent snapshots, one subdirectory
//                             per scheduler — DESIGN.md §11; written every
//                             --checkpoint-every epochs, default 1)
//           [--restore]      (resume each run from its newest good snapshot
//                             in --checkpoint-dir; bit-identical to the
//                             uninterrupted run. Corrupt/torn snapshots are
//                             skipped with a warning and the previous good
//                             one is used; no snapshot = fresh run)
//           [--checkpoint-faults SPEC]
//                            (storage-side chaos, e.g.
//                             "torn=0.2,corrupt=0.1,seed=7" —
//                             ckpt/write_faults.hpp; corrupts snapshot
//                             *writes* so the CRC/fallback path is exercised)
//           [--version]      (print build provenance and exit)
//           [--metrics-out BASE] [--trace-out BASE] [--ledger-out BASE]
//                            (observability dumps, one file set per
//                             scheduler: BASE.<sched>.prom + .json metrics
//                             snapshots, BASE.<sched>.trace.json Chrome
//                             trace for chrome://tracing / Perfetto, and
//                             BASE.<sched>.json cost-ledger cells; any of
//                             the three also prints a `lips obs:` summary)
//
// Examples:
//   lipsctl                                  # the paper's Fig-6 (iii) setup
//   lipsctl --nodes 40 --workload swim --jobs 100 --epoch 300
//   lipsctl --schedulers default,lips --csv  # machine-readable output
//   lipsctl --faults mtbf=3600,mttr=600,storeloss=0.5 --schedulers lips
//   lipsctl --faults slowdown=2,slowdown_factor=4 --speculation cost
//
// Exit code 0 when every requested run completed within the horizon.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include <algorithm>
#include <chrono>
#include <thread>

#include "ckpt/store.hpp"
#include "ckpt/write_faults.hpp"
#include "common/build_info.hpp"
#include "common/table.hpp"
#include "farm/farm.hpp"
#include "farm/sweep_json.hpp"
#include "obs/export.hpp"
#include "core/lips_policy.hpp"
#include "lp/solver_faults.hpp"
#include "sched/delay_scheduler.hpp"
#include "sched/fair_scheduler.hpp"
#include "sched/fifo_scheduler.hpp"
#include "sched/flow_scheduler.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "workload/swim.hpp"

namespace {

using namespace lips;

struct Args {
  std::size_t nodes = 20;
  double c1 = 0.5;
  double small = 0.0;
  std::size_t zones = 3;
  std::string workload = "table4";
  std::size_t jobs = 100;    // swim
  std::size_t tasks = 400;   // random
  double epoch_s = 600.0;
  std::uint64_t seed = 2013;
  std::string schedulers = "default,delay,lips";
  std::size_t replication = 3;
  double patience = 1.25;  // <= 0 → prohibitive fake node
  bool csv = false;
  std::string trace_file;
  std::string metrics_out;  // obs dumps; empty = that sink stays off
  std::string trace_out;
  std::string ledger_out;
  std::string faults;  // fault-storm spec; empty = fault-free
  std::string solver_faults;  // LP solver chaos spec; empty = no injection
  std::string speculation = "auto";  // auto|off|naive|cost
  bool feedback = true;  // LiPS observed-throughput feedback / quarantine
  std::string checkpoint_dir;     // empty = checkpointing off
  std::size_t checkpoint_every = 1;  // epochs between snapshots
  std::string checkpoint_faults;  // snapshot write-fault spec; empty = none
  bool restore = false;           // resume from the newest good snapshot
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--nodes N] [--c1 F] [--small F] [--zones Z]\n"
         "       [--workload table4|swim|random] [--jobs N] [--tasks N]\n"
         "       [--epoch S] [--seed S] [--schedulers LIST] "
         "[--replication R]\n"
         "       [--patience FACTOR|off] [--csv] [--trace FILE]\n"
         "       [--metrics-out BASE] [--trace-out BASE] [--ledger-out "
         "BASE]\n"
         "       [--faults SPEC]   e.g. mtbf=3600,revoke=0.1,seed=7\n"
         "       [--solver-faults SPEC]   e.g. nan=0.2,basis=0.3,seed=7\n"
         "       [--speculation auto|off|naive|cost] [--no-feedback]\n"
         "       [--checkpoint-dir DIR] [--checkpoint-every EPOCHS] "
         "[--restore]\n"
         "       [--checkpoint-faults SPEC]   e.g. torn=0.2,corrupt=0.1\n"
         "       [--version]\n";
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--nodes") {
      a.nodes = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--c1") {
      a.c1 = std::atof(value().c_str());
    } else if (flag == "--small") {
      a.small = std::atof(value().c_str());
    } else if (flag == "--zones") {
      a.zones = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--workload") {
      a.workload = value();
    } else if (flag == "--jobs") {
      a.jobs = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--tasks") {
      a.tasks = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--epoch") {
      a.epoch_s = std::atof(value().c_str());
    } else if (flag == "--seed") {
      a.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--schedulers") {
      a.schedulers = value();
    } else if (flag == "--replication") {
      a.replication = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--patience") {
      const std::string v = value();
      a.patience = v == "off" ? -1.0 : std::atof(v.c_str());
    } else if (flag == "--csv") {
      a.csv = true;
    } else if (flag == "--trace") {
      a.trace_file = value();
    } else if (flag == "--metrics-out") {
      a.metrics_out = value();
    } else if (flag == "--trace-out") {
      a.trace_out = value();
    } else if (flag == "--ledger-out") {
      a.ledger_out = value();
    } else if (flag == "--faults") {
      a.faults = value();
    } else if (flag == "--solver-faults") {
      a.solver_faults = value();
    } else if (flag == "--speculation") {
      a.speculation = value();
      if (a.speculation != "auto" && a.speculation != "off" &&
          a.speculation != "naive" && a.speculation != "cost")
        usage(argv[0]);
    } else if (flag == "--no-feedback") {
      a.feedback = false;
    } else if (flag == "--checkpoint-dir") {
      a.checkpoint_dir = value();
    } else if (flag == "--checkpoint-every") {
      a.checkpoint_every = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--checkpoint-faults") {
      a.checkpoint_faults = value();
    } else if (flag == "--restore") {
      a.restore = true;
    } else if (flag == "--version") {
      std::cout << version_line() << "\n";
      std::exit(0);
    } else {
      usage(argv[0]);
    }
  }
  return a;
}

workload::Workload make_workload(const Args& a, const cluster::Cluster& c) {
  Rng rng(a.seed);
  if (a.workload == "table4") return workload::make_table4_workload(c, rng);
  if (a.workload == "swim") {
    workload::SwimParams sp;
    sp.n_jobs = a.jobs;
    return workload::make_swim_workload(sp, c, rng).workload;
  }
  if (a.workload == "random") {
    workload::RandomWorkloadParams wp;
    wp.n_tasks = a.tasks;
    return workload::make_random_workload(wp, c, rng);
  }
  std::cerr << "unknown workload: " << a.workload << "\n";
  std::exit(2);
}

[[noreturn]] void sweep_usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " sweep [--cell SPEC]... [--threads N] [--seed S]\n"
               "       [--seeds MAX] [--min-seeds N] [--batch-seeds N]\n"
               "       [--target-halfwidth X] [--out FILE]\n"
               "cell spec keys: name, workload, sched (e.g. delay+lips), vs,\n"
               "  stat, nodes, c1, small, zones, jobs, tasks, epoch,\n"
               "  replication, prune_machines, prune_stores, mtbf, mttr,\n"
               "  permanent, revoke, warn, storeloss, degrade, slowdown,\n"
               "  slowdown_factor, slowdown_window, horizon, ...\n";
  std::exit(2);
}

int sweep_main(int argc, char** argv) {
  farm::SweepConfig cfg;
  cfg.threads = std::max(1u, std::thread::hardware_concurrency());
  cfg.stop.min_seeds = 8;
  cfg.stop.max_seeds = 32;
  cfg.stop.batch_seeds = 8;
  cfg.stop.target_half_width = 0.02;
  std::string out_file;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) sweep_usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--cell") {
      try {
        cfg.cells.push_back(farm::parse_scenario_spec(value()));
      } catch (const std::exception& e) {
        std::cerr << "bad --cell spec: " << e.what() << "\n";
        return 2;
      }
    } else if (flag == "--threads") {
      cfg.threads = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--seed") {
      cfg.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (flag == "--seeds") {
      cfg.stop.max_seeds = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--min-seeds") {
      cfg.stop.min_seeds = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--batch-seeds") {
      cfg.stop.batch_seeds = std::strtoul(value().c_str(), nullptr, 10);
    } else if (flag == "--target-halfwidth") {
      cfg.stop.target_half_width = std::atof(value().c_str());
    } else if (flag == "--out") {
      out_file = value();
    } else {
      sweep_usage(argv[0]);
    }
  }
  if (cfg.stop.min_seeds > cfg.stop.max_seeds)
    cfg.stop.min_seeds = cfg.stop.max_seeds;
  if (cfg.cells.empty())
    cfg.cells.push_back(farm::parse_scenario_spec("name=baseline"));

  std::cout << "sweep: " << cfg.cells.size() << " cell(s), seeds "
            << cfg.stop.min_seeds << ".." << cfg.stop.max_seeds
            << " (batch " << cfg.stop.batch_seeds << ", target CI ±"
            << Table::pct(cfg.stop.target_half_width) << "), "
            << cfg.threads << " thread(s), master seed " << cfg.seed << "\n";

  obs::MetricRegistry metrics;
  cfg.metrics = &metrics;
  // A sweep's *results* are deterministic; its wall clock is telemetry the
  // farm itself never reads (that is the callers' job, here and in bench/).
  const auto t0 = std::chrono::steady_clock::now();  // lips-lint: allow(nondet-time)
  farm::SweepResult sweep;
  try {
    sweep = farm::run_sweep(cfg);
  } catch (const std::exception& e) {
    std::cerr << "sweep failed: " << e.what() << "\n";
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - t0)  // lips-lint: allow(nondet-time)
          .count();

  Table t;
  t.set_header({"scenario", "stat", "seeds", "mean", "±95% CI", "p5", "p50",
                "p95", "stopped early", "ledgers"});
  bool all_reconcile = true;
  for (const farm::CellResult& c : sweep.cells) {
    const farm::CellStats& st = c.stats;
    // Savings cells format as percents; dollar cells as plain numbers.
    const bool pct = c.spec.stat_is_savings();
    auto fmt = [&](double v) {
      return pct ? Table::pct(v) : Table::num(v, 3);
    };
    t.add_row({c.spec.name, pct ? "savings" : "cost_usd",
               std::to_string(st.n), fmt(st.mean), fmt(st.half_width),
               fmt(st.p5), fmt(st.p50), fmt(st.p95),
               c.stopped_early ? "yes" : "no",
               c.ledgers_reconcile ? "ok" : "MISMATCH"});
    all_reconcile = all_reconcile && c.ledgers_reconcile;
  }
  t.print(std::cout);
  std::cout << sweep.total_runs << " runs on " << sweep.threads
            << " thread(s) in " << Table::num(wall_s, 2)
            << " s; farm_runs_total = "
            << metrics.counter("farm_runs_total").value() << "\n";

  if (!out_file.empty()) {
    farm::SweepMeta meta;
    meta.bench = "sweep";
    meta.wall_time_s = wall_s;
    std::ofstream out = obs::open_output(out_file);
    farm::write_sweep_json(sweep, meta, out);
    std::cout << "sweep artifact written to " << out_file << "\n";
  }
  return all_reconcile ? 0 : 1;
}

// `lipsctl serve` is the lipsd daemon hosted inside lipsctl — identical
// strict flag contract (svc::parse_daemon_args), identical transports. It
// exists so the one binary a user already has can both drive and host a
// service, e.g. `lipsctl serve --stdio` under a supervisor.
int serve_main(int argc, char** argv) {
  const svc::DaemonArgs args =
      svc::parse_daemon_args({argv + 1, argv + argc});
  switch (args.mode) {
    case svc::DaemonArgs::Mode::Version:
      std::cout << version_line() << "\n";
      return 0;
    case svc::DaemonArgs::Mode::Help:
      std::cout << svc::daemon_usage();
      return 0;
    case svc::DaemonArgs::Mode::Error:
      std::cerr << "lipsctl serve: " << args.error << "\n"
                << svc::daemon_usage();
      return 64;  // EX_USAGE
    case svc::DaemonArgs::Mode::Serve:
      break;
  }
  obs::MetricRegistry metrics;
  obs::Tracer tracer;
  svc::ServiceOptions options;
  options.queue_capacity = args.queue_capacity;
  options.snapshot_root = args.snapshot_dir;
  options.metrics = &metrics;
  options.tracer = &tracer;
  svc::Service service(options);
  svc::Server server(service);
  if (args.stdio) {
    server.serve_fd(0, 1);
    return 0;
  }
  try {
    server.listen_unix(args.socket_path);
  } catch (const std::exception& e) {
    std::cerr << "lipsctl serve: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "lipsctl serve: listening on " << server.socket_path()
            << "\n";
  server.run();
  return 0;
}

[[noreturn]] void replay_usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " replay --connect SOCKET [--cell SPEC] [--seed S]\n"
               "       [--session NAME]\n"
               "Replays the seeded scenario against a running lipsd and\n"
               "in-process, then demands bit-identical schedules and "
               "ledgers.\n";
  std::exit(64);  // EX_USAGE
}

int replay_main(int argc, char** argv) {
  std::string socket;
  std::string cell = "name=replay,nodes=8,jobs=3";
  std::string session = "replay";
  std::uint64_t seed = 2013;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) replay_usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--connect") {
      socket = value();
    } else if (flag == "--cell") {
      cell = value();
    } else if (flag == "--session") {
      session = value();
    } else if (flag == "--seed") {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else {
      std::cerr << "lipsctl replay: unknown flag: " << flag << "\n";
      replay_usage(argv[0]);
    }
  }
  if (socket.empty()) {
    std::cerr << "lipsctl replay: --connect SOCKET is required\n";
    replay_usage(argv[0]);
  }
  svc::ReplayComparison cmp;
  try {
    cmp = svc::replay_and_compare(socket, cell, seed, session);
  } catch (const std::exception& e) {
    std::cerr << "lipsctl replay: " << e.what() << "\n";
    return 1;
  }
  std::cout << "replay: cell \"" << cell << "\" seed " << seed
            << " session " << session << "\n"
            << "  digest  local=" << cmp.local_digest
            << " remote=" << cmp.remote_digest << "\n"
            << "  total   local=" << cmp.local_total.dollars()
            << " remote=" << cmp.remote_total.dollars() << " USD\n"
            << "  carry   local=" << cmp.local_carry.dollars()
            << " remote=" << cmp.remote_carry.dollars() << " USD\n"
            << "  lp      local=" << cmp.local_lp_solves
            << " remote=" << cmp.remote_lp_solves << " solves\n";
  if (!cmp.identical) {
    std::cout << "DIVERGED: " << cmp.divergence << "\n";
    return 1;
  }
  std::cout << "bit-identical\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
    return sweep_main(argc - 1, argv + 1);
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
    return serve_main(argc - 1, argv + 1);
  if (argc > 1 && std::strcmp(argv[1], "replay") == 0)
    return replay_main(argc - 1, argv + 1);
  const Args args = parse(argc, argv);
  const cluster::Cluster c =
      cluster::make_ec2_cluster(args.nodes, args.c1, args.zones, args.small);
  const workload::Workload w = make_workload(args, c);

  if (!args.csv) {
    std::cout << "cluster: " << args.nodes << " nodes / " << args.zones
              << " zones (" << args.c1 * 100 << "% c1.medium, "
              << args.small * 100 << "% m1.small)\n"
              << "workload: " << w.job_count() << " jobs, " << w.total_tasks()
              << " tasks, " << Table::num(w.total_input_mb() / kMBPerGB, 1)
              << " GB, " << Table::num(w.total_cpu_ecu_s(), 0)
              << " ECU-seconds\n\n";
  }

  // One storm shared by every scheduler: the comparison is apples-to-apples
  // because each run absorbs the identical fault sequence.
  sim::FaultPlan fault_plan;
  if (!args.faults.empty()) {
    try {
      fault_plan = sim::make_fault_storm(sim::parse_fault_spec(args.faults),
                                         c.machine_count(), c.store_count());
    } catch (const std::exception& e) {
      std::cerr << "bad --faults spec: " << e.what() << "\n";
      std::exit(2);
    }
  }
  lp::SolverFaultConfig solver_fault_config;
  if (!args.solver_faults.empty()) {
    try {
      solver_fault_config = lp::parse_solver_fault_spec(args.solver_faults);
    } catch (const std::exception& e) {
      std::cerr << "bad --solver-faults spec: " << e.what() << "\n";
      std::exit(2);
    }
  }
  ckpt::SnapshotFaultConfig ckpt_fault_config;
  if (!args.checkpoint_faults.empty()) {
    try {
      ckpt_fault_config =
          ckpt::parse_snapshot_fault_spec(args.checkpoint_faults);
    } catch (const std::exception& e) {
      std::cerr << "bad --checkpoint-faults spec: " << e.what() << "\n";
      std::exit(2);
    }
  }

  Table t;
  std::vector<std::string> header{"scheduler", "cost_usd", "makespan_s",
                                  "sum_job_duration_s", "locality",
                                  "completed"};
  if (!args.faults.empty()) {
    header.insert(header.end(), {"killed", "retries", "lost", "slowdowns",
                                 "wasted_usd"});
  }
  const bool spec_cols = args.speculation != "off";
  if (spec_cols) header.insert(header.end(), {"spec", "spec_usd"});
  t.set_header(header);
  bool all_completed = true;
  std::string lips_lp_summary;  // printed under the table in non-csv mode
  std::string obs_summary;      // one `lips obs:` line per scheduler
  const bool want_obs = !args.metrics_out.empty() ||
                        !args.trace_out.empty() || !args.ledger_out.empty();

  std::stringstream names(args.schedulers);
  std::string name;
  while (std::getline(names, name, ',')) {
    sim::SimConfig cfg;
    cfg.hdfs_replication = args.replication;
    cfg.task_timeout_s = 600.0;
    cfg.record_trace = !args.trace_file.empty();
    cfg.faults = fault_plan;
    std::unique_ptr<sched::Scheduler> policy;
    core::LipsPolicy* lips_policy = nullptr;  // for LP telemetry below
    // Fresh injector per run: its RNG stream is part of the run's identity,
    // and it must outlive the policy that holds a pointer to it.
    std::unique_ptr<lp::SolverFaultInjector> injector;
    if (name == "default") {
      cfg.speculative_execution = true;
      cfg.speculation.mode = sim::SpeculationConfig::Mode::Naive;
      policy = std::make_unique<sched::FifoLocalityScheduler>();
    } else if (name == "delay") {
      cfg.speculative_execution = true;
      cfg.speculation.mode = sim::SpeculationConfig::Mode::Naive;
      policy = std::make_unique<sched::DelayScheduler>();
    } else if (name == "fair") {
      policy = std::make_unique<sched::FairScheduler>();
    } else if (name == "quincy") {
      policy = std::make_unique<sched::QuincyFlowScheduler>();
    } else if (name == "lips") {
      core::LipsPolicyOptions lo;
      lo.epoch_s = args.epoch_s;
      if (args.patience > 0) {
        lo.model.fake_node_pricing =
            core::ModelOptions::FakeNodePricing::PatienceMin;
        lo.model.fake_node_price_factor = args.patience;
      } else {
        lo.model.fake_node_pricing =
            core::ModelOptions::FakeNodePricing::ProhibitiveMax;
        lo.model.fake_node_price_factor = 1000.0;
      }
      if (args.nodes > 30) {
        lo.model.max_candidate_machines = 12;
        lo.model.max_candidate_stores = 8;
      }
      lo.throughput_feedback = args.feedback;
      if (!args.feedback) lo.quarantine_below = 0.0;
      if (!args.solver_faults.empty()) {
        injector =
            std::make_unique<lp::SolverFaultInjector>(solver_fault_config);
        lo.model.solver_options.fault_injector = injector.get();
      }
      cfg.hdfs_replication = 1;  // LiPS manages placement itself
      cfg.task_timeout_s = 1200.0;
      auto lips = std::make_unique<core::LipsPolicy>(lo);
      lips_policy = lips.get();
      policy = std::move(lips);
    } else {
      std::cerr << "unknown scheduler: " << name << "\n";
      return 2;
    }
    // --speculation overrides each scheduler's paper default.
    if (args.speculation == "off") {
      cfg.speculative_execution = false;
    } else if (args.speculation == "naive") {
      cfg.speculative_execution = true;
      cfg.speculation.mode = sim::SpeculationConfig::Mode::Naive;
    } else if (args.speculation == "cost") {
      cfg.speculative_execution = true;
      cfg.speculation.mode = sim::SpeculationConfig::Mode::CostAware;
    }
    // Fresh sinks per run: the ledger folds posts in billing order, so a
    // ledger shared across runs would reconcile against neither.
    std::unique_ptr<obs::MetricRegistry> metrics;
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<obs::CostLedger> ledger;
    if (want_obs) {
      metrics = std::make_unique<obs::MetricRegistry>();
      tracer = std::make_unique<obs::Tracer>();
      ledger = std::make_unique<obs::CostLedger>();
      cfg.obs = obs::Observer{metrics.get(), tracer.get(), ledger.get()};
    }
    // Checkpoint wiring (DESIGN.md §11). Each scheduler gets its own
    // subdirectory so sequence numbers never interleave across runs.
    std::unique_ptr<ckpt::CheckpointDir> ckpt_dir;
    std::unique_ptr<ckpt::SnapshotFaultInjector> ckpt_faults;
    std::optional<ckpt::Snapshot> resume_snap;  // must outlive the run
    if (!args.checkpoint_dir.empty()) {
      ckpt_dir = std::make_unique<ckpt::CheckpointDir>(args.checkpoint_dir +
                                                       "/" + name);
      cfg.checkpoint_dir = ckpt_dir.get();
      cfg.checkpoint_every_epochs =
          args.checkpoint_every > 0 ? args.checkpoint_every : 1;
      cfg.checkpoint_label = name + ":seed=" + std::to_string(args.seed);
      if (!args.checkpoint_faults.empty()) {
        ckpt_faults =
            std::make_unique<ckpt::SnapshotFaultInjector>(ckpt_fault_config);
        cfg.checkpoint_faults = ckpt_faults.get();
      }
      if (args.restore) {
        std::vector<ckpt::CheckpointDir::Skipped> skipped;
        resume_snap = ckpt_dir->load_latest(&skipped);
        for (const auto& s : skipped) {
          std::cerr << "lips ckpt: " << name << ": skipping " << s.path
                    << ": " << s.reason << "\n";
        }
        if (resume_snap) {
          cfg.restore_from = &*resume_snap;
          if (!args.csv) {
            std::cout << "lips ckpt: " << name << ": resuming from epoch "
                      << resume_snap->meta.epoch << " (t="
                      << Table::num(resume_snap->meta.sim_time_s, 1)
                      << " s, built from " << resume_snap->meta.git_sha
                      << ")\n";
          }
        } else if (!args.csv) {
          std::cout << "lips ckpt: " << name
                    << ": no usable snapshot, starting fresh\n";
        }
      }
    } else if (args.restore || !args.checkpoint_faults.empty()) {
      std::cerr << "--restore/--checkpoint-faults require --checkpoint-dir\n";
      return 2;
    }
    const sim::SimResult r = sim::simulate(c, w, *policy, cfg);
    all_completed = all_completed && r.completed;
    if (ckpt_dir && !args.csv) {
      std::cout << "lips ckpt: " << name << ": " << r.checkpoints_written
                << " snapshot(s) written, " << r.checkpoint_failures
                << " failed, schedule digest " << std::hex
                << r.schedule_digest << std::dec
                << (r.restored ? " (resumed run)" : "") << "\n";
      if (ckpt_faults) {
        const auto st = ckpt_faults->stats();
        std::cout << "lips ckpt: " << name << ": fault injector saw "
                  << st.snapshots_seen << " write(s): " << st.torn
                  << " torn, " << st.truncated << " truncated, "
                  << st.corrupted << " corrupted\n";
      }
    }
    if (want_obs) {
      if (!args.metrics_out.empty()) {
        const auto samples = metrics->snapshot();
        std::ofstream prom =
            obs::open_output(args.metrics_out + "." + name + ".prom");
        obs::write_prometheus(samples, prom);
        std::ofstream json =
            obs::open_output(args.metrics_out + "." + name + ".json");
        obs::write_metrics_json(samples, json);
      }
      if (!args.trace_out.empty()) {
        std::ofstream out =
            obs::open_output(args.trace_out + "." + name + ".trace.json");
        obs::write_chrome_trace(*tracer, out);
      }
      if (!args.ledger_out.empty()) {
        std::ofstream out =
            obs::open_output(args.ledger_out + "." + name + ".json");
        obs::write_ledger_json(*ledger, out);
      }
      const obs::CostLedger::Reconciliation rec =
          ledger->reconcile(sim::billed_totals(r));
      std::ostringstream os;
      os << "lips obs: " << name << ": billed $"
         << Table::num(millicents_to_dollars(ledger->billed_total()), 3)
         << " (cpu $"
         << Table::num(millicents_to_dollars(
                           ledger->category_total(obs::CostCategory::Cpu)),
                       3)
         << ", transfer $"
         << Table::num(millicents_to_dollars(ledger->category_total(
                           obs::CostCategory::Transfer)),
                       3)
         << ", placement $"
         << Table::num(millicents_to_dollars(ledger->category_total(
                           obs::CostCategory::InitialPlacement)),
                       3)
         << ", wasted $"
         << Table::num(millicents_to_dollars(ledger->category_total(
                           obs::CostCategory::WastedFault)),
                       3)
         << ", spec $"
         << Table::num(millicents_to_dollars(ledger->category_total(
                           obs::CostCategory::Speculation)),
                       3)
         << ", carry $"
         << Table::num(millicents_to_dollars(ledger->category_total(
                           obs::CostCategory::FakeNodeCarry)),
                       3)
         << "), ledger "
         << (rec.ok ? "reconciles bit-identically" : "DOES NOT reconcile")
         << " over " << ledger->posts() << " posts, "
         << tracer->total_recorded() << " trace events ("
         << tracer->overwritten() << " overwritten), "
         << metrics->series_count() << " metric series\n";
      obs_summary += os.str();
    }
    if (!args.trace_file.empty()) {
      const std::string path = args.trace_file + "." + name + ".csv";
      std::ofstream out(path);
      out << "time_s,event,job,task,machine,store,amount\n";
      for (const sim::TraceEvent& e : r.trace) {
        auto field = [](std::size_t v) {
          return v == SIZE_MAX ? std::string() : std::to_string(v);
        };
        out << e.time_s << ',' << sim::to_string(e.kind) << ',' << field(e.job)
            << ',' << field(e.task) << ',' << field(e.machine) << ','
            << field(e.store) << ',' << e.amount << "\n";
      }
      if (!args.csv) std::cout << "trace written to " << path << "\n";
    }
    std::vector<std::string> row{
        name, Table::num(millicents_to_dollars(r.total_cost_mc), 3),
        Table::num(r.makespan_s, 0), Table::num(r.sum_job_duration_s, 0),
        Table::pct(r.data_local_fraction.value()), r.completed ? "yes" : "no"};
    if (!args.faults.empty()) {
      row.push_back(std::to_string(r.tasks_killed_by_faults));
      row.push_back(std::to_string(r.fault_retries));
      row.push_back(std::to_string(r.tasks_lost));
      row.push_back(std::to_string(r.machine_slowdowns));
      row.push_back(Table::num(millicents_to_dollars(r.wasted_cost_mc), 3));
    }
    if (spec_cols) {
      row.push_back(std::to_string(r.speculative_launched));
      row.push_back(
          Table::num(millicents_to_dollars(r.speculation_cost_mc), 3));
    }
    t.add_row(row);
    if (lips_policy != nullptr) {
      std::ostringstream os;
      os << "lips lp: " << lips_policy->lp_solves() << " solves ("
         << lips_policy->lp_warm_solves() << " warm, "
         << lips_policy->lp_model_reuses() << " model reuses, "
         << lips_policy->lp_cold_fallbacks() << " cold fallbacks), "
         << lips_policy->total_lp_iterations() << " pivots ("
         << lips_policy->lp_repair_iterations() << " dual repair), "
         << lips_policy->off_cycle_resolves() << " off-cycle re-solves\n";
      os << "lips resilience: " << lips_policy->schedules_validated()
         << " schedules validated (" << lips_policy->validation_failures()
         << " rejected), degradations: "
         << lips_policy->degradations(core::LipsPolicy::DegradationRung::ColdRebuild)
         << " cold rebuild, "
         << lips_policy->degradations(core::LipsPolicy::DegradationRung::SanitizedRetry)
         << " sanitized retry, "
         << lips_policy->degradations(core::LipsPolicy::DegradationRung::GreedyFallback)
         << " greedy fallback, "
         << lips_policy->degradations(core::LipsPolicy::DegradationRung::ReuseLastPlan)
         << " plan reuse, " << lips_policy->solver_exceptions()
         << " solver exceptions\n";
      if (injector != nullptr) {
        const lp::SolverFaultInjector::Stats& fs = injector->stats();
        os << "lips solver-faults: " << fs.total_injected()
           << " faults injected over " << fs.solves_seen << " solves ("
           << fs.objective_nans << " cost NaN, " << fs.rhs_nans
           << " rhs NaN, " << fs.rhs_infs << " rhs Inf, "
           << fs.objective_huges << " cost huge, " << fs.bases_corrupted
           << " bases corrupted, " << fs.refactor_failures
           << " refactor failures, " << fs.budgets_starved
           << " budgets starved)\n";
      }
      lips_lp_summary = os.str();
    }
  }

  if (args.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
    if (!lips_lp_summary.empty()) std::cout << "\n" << lips_lp_summary;
    if (!obs_summary.empty()) std::cout << "\n" << obs_summary;
  }
  return all_completed ? 0 : 1;
}
