// Seeded-violation fixture for the blocking-call-in-handler rule. NOT part
// of the build: never compiled, only scanned by `lips_lint --self-test`.
// The filename matches the svc handler scope on purpose: these are the
// primitives a per-session command handler must never call. Each session
// has exactly one worker thread draining its bounded queue, so a handler
// that sleeps or waits on an fd freezes every queued command behind it and
// turns backpressure (BUSY) into a livelock for that tenant.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

namespace fixture_svc_handler {

// Sleeping in a handler — "wait for the cluster to settle" — both fire.
inline void handle_tick_with_grace_period() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // lint-expect(blocking-call-in-handler)
  usleep(500);  // lint-expect(blocking-call-in-handler)
}

// Synchronous file IO in a handler: snapshots must go through the ckpt
// layer (which the rule does not scan), never raw streams.
inline void handle_snapshot_to(const char* path) {
  std::ofstream out(path);  // lint-expect(blocking-call-in-handler)
  std::FILE* f = fopen(path, "r");  // lint-expect(blocking-call-in-handler)
  static_cast<void>(f);
}

// Waiting on fds belongs in the transport (server.cpp), not the handler.
inline long handle_sideband_read(int fd, char* buf, unsigned long n) {
  return ::read(fd, buf, n);  // lint-expect(blocking-call-in-handler)
}

// Non-blocking work — parsing, arithmetic, container ops — must not fire.
inline unsigned long handle_plan_query(unsigned long epochs) {
  return epochs * 2 + 1;
}

// Identifiers that merely contain a banned stem must not fire.
inline void on_disconnect_bookkeeping();  // "connect" inside "disconnect"
inline void spread_tasks(unsigned long readiness);

// A suppressed line must not be reported.
inline void handle_debug_pause() {
  std::this_thread::sleep_for(std::chrono::seconds(1));  // lips-lint: allow(blocking-call-in-handler)
}

}  // namespace fixture_svc_handler
