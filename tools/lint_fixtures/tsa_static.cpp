// Seeded-violation fixture for the shared-mutable-static rule. NOT part of
// the build: never compiled, only scanned by `lips_lint --self-test`. The
// file name starts with "tsa_" so in_concurrency_scope() applies the
// concurrency rules (real library code matches via src/).
#include <cstddef>

namespace fixture_static {

// A mutable namespace-scope static is shared by every farm worker thread.
static std::size_t total_runs = 0;  // lint-expect(shared-mutable-static)

// Immutable statics are shared-read-only and must not fire.
static const double kRate = 0.5;
static constexpr int kSlots = 4;

// thread_local is per-thread by definition — the sanctioned escape hatch.
static thread_local std::size_t per_worker_scratch = 0;

// A static *function* declaration is internal linkage, not shared data.
static double scale_factor();

inline std::size_t bump() {
  // Function-scope mutable static: same shared-state hazard, same rule.
  static std::size_t calls = 0;  // lint-expect(shared-mutable-static)
  return ++calls;
}

struct Widget {
  // Class-scope static data members are process-wide state too.
  static std::size_t live_count;  // lint-expect(shared-mutable-static)
  // Static member functions are not data.
  static std::size_t peak();
};

// A suppressed line must not be reported.
static std::size_t grandfathered = 0;  // lips-lint: allow(shared-mutable-static)

}  // namespace fixture_static
