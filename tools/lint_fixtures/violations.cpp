// Seeded-violation fixture for lips-lint's self-test. NOT part of the build:
// never compiled, only scanned by `lips_lint --self-test`. Every banned
// pattern below is tagged with `lint-expect(<rule>)`; the self-test fails
// unless lint flags exactly the tagged lines — so this file proves both that
// each rule fires and that the suppression / comment-stripping logic does
// not fire anywhere else.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <random>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

// --- raw-cost-double -------------------------------------------------------
struct Bill {
  double total_cost_mc = 0.0;        // lint-expect(raw-cost-double)
  double wasted_mc = 0.0;            // lint-expect(raw-cost-double)
  double input_bytes = 0.0;          // lint-expect(raw-cost-double)
  double runtime_secs = 0.0;         // lint-expect(raw-cost-double)
  double makespan_s = 0.0;           // OK: suffix not in the banned set
  int64_t count = 0;                 // OK: not a double
};
// Suppressed occurrence must NOT be reported:
inline double legacy_cost_mc() {     // lips-lint: allow(raw-cost-double)
  return 0.0;
}

// --- raw-rng ---------------------------------------------------------------
inline int bad_random() {
  std::random_device rd;             // lint-expect(raw-rng)
  std::srand(rd());                  // lint-expect(raw-rng) lint-expect(raw-rng)
  return std::rand();                // lint-expect(raw-rng)
}
// A comment mentioning rand() or std::random_device must not fire.

// --- unordered-iteration ---------------------------------------------------
inline std::size_t bad_iteration() {
  std::unordered_map<std::size_t, double> weights;
  std::unordered_set<std::size_t> members;
  std::size_t sum = 0;
  for (const auto& kv : weights) sum += kv.first;  // lint-expect(unordered-iteration)
  auto it = members.begin();                       // lint-expect(unordered-iteration)
  (void)it;
  // Membership lookups are fine:
  if (weights.count(0) != 0) ++sum;
  return sum;
}

// --- float-type ------------------------------------------------------------
inline float narrow(float x) { return x; }  // lint-expect(float-type) lint-expect(float-type)
// The word float inside this comment or a "float string" must not fire.

// --- nondet-time -----------------------------------------------------------
inline long bad_clock() {
  return std::time(nullptr) +        // lint-expect(nondet-time)
         std::clock();               // lint-expect(nondet-time)
}

// --- direct-solver-ctor ----------------------------------------------------
// This fixture lives under tools/, i.e. outside the src/lp//src/core layer.
struct RevisedSimplexSolver {};      // lint-expect(direct-solver-ctor)
inline void bad_solver_use() {
  RevisedSimplexSolver engine;       // lint-expect(direct-solver-ctor)
  (void)engine;
}
// A comment naming RevisedSimplexSolver must not fire; a suppressed use:
using Engine = RevisedSimplexSolver;  // lips-lint: allow(direct-solver-ctor)

// --- raw-stdout-in-lib -----------------------------------------------------
// The fixture opts into the src/-only gate (see stdout_banned in the linter).
inline void bad_report(double cost) {
  std::cout << "cost: " << cost;     // lint-expect(raw-stdout-in-lib)
  printf("%f", cost);                // lint-expect(raw-stdout-in-lib)
}
// std::cout in this comment or in a "std::cout string" must not fire, and
// neither must the prefixed printf variants:
inline void ok_report(char* buf, std::size_t n, double cost) {
  std::snprintf(buf, n, "%f", cost);  // OK: snprintf writes to a buffer
}
// A suppressed occurrence must not be reported either:
inline void legacy_report() { std::cout.flush(); }  // lips-lint: allow(raw-stdout-in-lib)

}  // namespace fixture
