// Fixture for the unchecked-solve-status rule. Never compiled — only
// scanned by `lips_lint --self-test`, which demands that every finding
// matches a `lint-expect(<rule>)` marker on its line and that every marker
// fires. Positives use a solution's values without ever inspecting its
// status; negatives check .status or .optimal() first and must stay clean.
#include "lp/solver.hpp"

namespace fixture {

double bad_objective_unchecked(const lips::lp::LpModel& m) {
  lips::lp::LpSolution sol = lips::lp::make_solver()->solve(m);
  return sol.objective;  // lint-expect(unchecked-solve-status)
}

double bad_values_unchecked(const lips::lp::LpModel& m) {
  lips::lp::LpSolution raw = lips::lp::make_solver()->solve(m);
  return raw.values[0];  // lint-expect(unchecked-solve-status)
}

double good_status_compared(const lips::lp::LpModel& m) {
  lips::lp::LpSolution checked = lips::lp::make_solver()->solve(m);
  if (checked.status != lips::lp::SolveStatus::Optimal) return 0.0;
  return checked.objective;  // clean: .status inspected above
}

double good_optimal_called(const lips::lp::LpModel& m) {
  lips::lp::LpSolution guarded = lips::lp::make_solver()->solve(m);
  if (!guarded.optimal()) return 0.0;
  return guarded.values[0] + guarded.objective;  // clean: .optimal() guards
}

}  // namespace fixture
