// Seeded-violation fixture for the unordered-serialize rule. NOT part of the
// build: never compiled, only scanned by `lips_lint --self-test`. The file
// name starts with "ckpt" so in_ckpt_layer() treats it as checkpoint-layer
// code (see the linter); violations.cpp deliberately does NOT opt in, since
// it seeds unordered containers for the unordered-iteration rule.
#include <cstdint>
#include <map>
#include <unordered_map>  // lint-expect(unordered-serialize)
#include <unordered_set>  // lint-expect(unordered-serialize)

namespace ckpt_fixture {

struct Writer;

// Any unordered container in serialization code fires, declaration included —
// the rule bans the type, not just iteration.
struct BadSnapshotState {
  std::unordered_map<std::size_t, double> presence;  // lint-expect(unordered-serialize)
  std::unordered_set<std::size_t> doomed;            // lint-expect(unordered-serialize)
};

// Ordered containers are the sanctioned spelling and must not fire.
struct GoodSnapshotState {
  std::map<std::size_t, double> presence;
};

// A comment naming unordered_map must not fire, and a suppressed line
// must not be reported:
using Legacy = std::unordered_map<int, int>;  // lips-lint: allow(unordered-serialize)

}  // namespace ckpt_fixture
