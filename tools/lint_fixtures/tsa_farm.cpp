// Seeded-violation fixture for the farm-shared-state rule. NOT part of the
// build: never compiled, only scanned by `lips_lint --self-test`. The file
// name starts with "tsa_farm", which opts into BOTH the src/ concurrency
// scope (tsa_ prefix) and the src/farm/ scope — so a plain mutable static
// here fires shared-mutable-static AND farm-shared-state, and the line
// carries a marker for each.
//
// The farm's contract (DESIGN.md §13): an N-thread sweep must be
// bit-identical to the serial one, which bans every form of hidden shared
// or sticky state — including thread_local, because pool threads are reused
// across batches and a value left behind by run A is visible to whichever
// run B lands on that thread next.
#include <cstddef>
#include <vector>

#include "common/thread_annotations.hpp"

namespace fixture_farm {

// Shared across every worker: fires both static rules.
static std::size_t runs_completed = 0;  // lint-expect(shared-mutable-static) lint-expect(farm-shared-state)

// Per-thread but *sticky* across runs on a reused pool thread: exempt from
// shared-mutable-static, but exactly the state farm-shared-state exists to
// catch.
static thread_local std::size_t scratch_from_last_run = 0;  // lint-expect(farm-shared-state)

// A class with no declared thread role: every mutable member fires.
struct UndeclaredAccumulator {
  double total = 0.0;        // lint-expect(farm-shared-state)
  std::size_t n = 0;         // lint-expect(farm-shared-state)
  std::vector<double> xs;    // lint-expect(farm-shared-state)
  void add(double x);
  // Immutable/static members are inherently safe — must not fire.
  const double bias = 0.0;
  static constexpr std::size_t kCap = 64;
};

// A head marker declares the thread role for the whole class — silent.
struct LIPS_EXTERNALLY_SYNCHRONIZED DeclaredAccumulator {
  double total = 0.0;
  std::size_t n = 0;
};

// Per-member annotations also satisfy the rule — silent.
struct AnnotatedWorkerState {
  double partial_ LIPS_PER_THREAD = 0.0;
};

// A suppressed line must not be reported.
struct Grandfathered {
  double legacy_total = 0.0;  // lips-lint: allow(farm-shared-state)
};

}  // namespace fixture_farm
