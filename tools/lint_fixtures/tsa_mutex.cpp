// Seeded-violation fixture for the raw-mutex rule. NOT part of the build:
// never compiled, only scanned by `lips_lint --self-test`. A raw std::mutex
// (or a raw lock adapter) carries no clang thread-safety capability
// annotations, so -Wthread-safety cannot see the critical sections it
// guards; lips::Mutex / lips::MutexLock are the sanctioned spellings.
#include <mutex>

#include "common/thread_annotations.hpp"

namespace fixture_mutex {

struct Session {
  // The annotated wrapper is the sanctioned member spelling — must not fire.
  lips::Mutex mu_;
  int revision_ LIPS_GUARDED_BY(mu_) = 0;
};

inline void raw_locking(Session& s) {
  std::mutex local;  // lint-expect(raw-mutex)
  std::lock_guard<lips::Mutex> hold(s.mu_);  // lint-expect(raw-mutex)
  std::recursive_mutex nested;  // lint-expect(raw-mutex)
  std::shared_mutex readers;    // lint-expect(raw-mutex)
  std::unique_lock<lips::Mutex> deferred;  // lint-expect(raw-mutex)
  (void)local;
  (void)nested;
  (void)readers;
  (void)deferred;
}

inline void sanctioned_locking(Session& s) {
  // The wrapper pair must not fire.
  lips::MutexLock hold(s.mu_);
  ++s.revision_;
}

// A suppressed line must not be reported.
inline std::mutex legacy_global_lock;  // lips-lint: allow(raw-mutex) lips-lint: allow(shared-mutable-static)

}  // namespace fixture_mutex
