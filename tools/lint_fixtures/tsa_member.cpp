// Seeded-violation fixture for the unguarded-member-mutation rule. NOT part
// of the build: never compiled, only scanned by `lips_lint --self-test`. A
// class that holds a by-value lips::Mutex has declared itself internally
// synchronized; every mutable data member must then carry
// LIPS_GUARDED_BY(<mutex>) so clang's -Wthread-safety can reject lock-free
// access. Unannotated members compile silently under the analysis — exactly
// the hole this rule closes.
#include <atomic>
#include <map>

#include "common/thread_annotations.hpp"

namespace fixture_member {

class BadRegistry {
 public:
  void touch(int k);
  [[nodiscard]] std::size_t count() const;

 private:
  lips::Mutex mu_;
  std::map<int, double> cells_;  // lint-expect(unguarded-member-mutation)
  std::size_t revision_ = 0;     // lint-expect(unguarded-member-mutation)

  // Annotated members are visible to the analysis — must not fire.
  std::map<int, double> guarded_cells_ LIPS_GUARDED_BY(mu_);
  std::size_t guarded_revision_ LIPS_GUARDED_BY(mu_) = 0;
  // Atomics synchronize themselves (their ordering contract is documented
  // at the declaration site, per DESIGN.md §12).
  std::atomic<std::size_t> hot_counter_{0};
  // Immutable after construction.
  const std::size_t capacity_ = 16;
  static constexpr std::size_t kMaxSeries = 1 << 20;
  // Explicitly per-thread members opt out with the marker.
  std::size_t scratch_ LIPS_PER_THREAD = 0;
};

// No mutex member → the class makes no internal-synchronization claim, and
// the rule stays silent (per-thread types are the default).
class PlainAccumulator {
 private:
  std::map<int, double> cells_;
  std::size_t revision_ = 0;
};

// MutexLock-style RAII holds a Mutex by *reference* — that is borrowing a
// capability, not owning one, and must not mark the class.
class ScopedThing {
 public:
  explicit ScopedThing(lips::Mutex& mu);

 private:
  lips::Mutex& mu_;
  bool engaged_ = false;
};

// A suppressed line must not be reported.
class Grandfathered {
 private:
  lips::Mutex mu_;
  std::size_t legacy_field_;  // lips-lint: allow(unguarded-member-mutation)
};

}  // namespace fixture_member
