// Seeded-violation fixture for the rng-by-ref-escape rule. NOT part of the
// build: never compiled, only scanned by `lips_lint --self-test`. Storing a
// reference to an Rng stream is how one generator silently ends up drawn
// from two threads (or in scheduler-dependent order), which breaks the
// seed-reproducibility contract even when every access is locked; a stored
// stream must be declared per-thread at the member or the class.
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace fixture_rng {

using lips::Rng;

// Un-annotated stored references escape their owner thread: both fire.
class StormDriver {
 public:
  explicit StormDriver(Rng& stream);

 private:
  Rng* rng_;      // lint-expect(rng-by-ref-escape)
  Rng& stream_;   // lint-expect(rng-by-ref-escape)
};

// Member-level marker: the declaration states the ownership contract.
class WorkerState {
 private:
  Rng* rng_ LIPS_PER_THREAD;
  std::size_t draws_ = 0;
};

// Class-level marker: the whole type is externally synchronized.
class LIPS_EXTERNALLY_SYNCHRONIZED SeedPlan {
 private:
  Rng* rng_;
  double horizon_factor_ = 1.0;
};

// A by-value Rng member is an owned stream, not an escape — must not fire.
class OwnedStream {
 private:
  Rng rng_;
};

// Rng parameters passed through (the dominant idiom in workload/cluster
// synthesis) are not stored and must not fire.
double draw_uniform(Rng& rng);

// A suppressed line must not be reported.
class Legacy {
  Rng* rng_;  // lips-lint: allow(rng-by-ref-escape)
};

}  // namespace fixture_rng
