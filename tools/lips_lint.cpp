// lips-lint — source-tree checker for the two invariants the test suite
// cannot see at runtime:
//
//   * cost correctness — every dollar-bearing quantity must travel through
//     the dimensional types in common/units.hpp, never as a raw double;
//   * determinism — no unseeded randomness, no iteration order leaking from
//     unordered containers into schedules or bills, no wall-clock reads.
//
// Rules (suppress a single line with `// lips-lint: allow(<rule>)`):
//
//   raw-cost-double      double-typed *_cost* / *_mc / *_bytes / *_secs
//                        declaration outside common/units.hpp
//   raw-rng              rand()/srand()/std::random_device outside
//                        common/rng.hpp (use lips::Rng)
//   unordered-iteration  range-for or .begin() over a std::unordered_map/
//                        unordered_set declared in the same file
//   float-type           `float` anywhere (the cost model is double-only;
//                        mixing widths changes rounding)
//   nondet-time          system_clock / steady_clock / high_resolution_clock
//                        / gettimeofday / time(nullptr) / clock() outside
//                        bench/ (benchmarks measure wall time by design)
//   direct-solver-ctor   RevisedSimplexSolver named outside src/lp/ and
//                        src/core/ — construct through lp::make_solver or
//                        drive epoch re-solves via core::EpochLpContext so
//                        warm-start basis reuse and iteration budgets stay
//                        centralized
//   raw-stdout-in-lib    printf/std::cout inside src/ library code — library
//                        layers report through return values, exceptions, or
//                        the obs exporters (which take a caller-supplied
//                        ostream); only the obs exporters and the tools/
//                        binaries own process stdout
//   unchecked-solve-status
//                        an LpSolution's .values/.objective consumed while
//                        the file never inspects that solution's .status or
//                        .optimal() — IterationLimit/Infeasible solutions
//                        carry empty or stale vectors, so acting on them
//                        silently schedules garbage
//   unordered-serialize  any std::unordered_* container inside src/ckpt/ —
//                        snapshot byte streams must be byte-stable
//                        (ckpt/codec.hpp), and hash-order anywhere in the
//                        serialization layer is a latent nondeterminism bug
//                        even before someone iterates it; use std::map/
//                        std::set (layers above may keep unordered state but
//                        must serialize a sorted copy)
//
// Usage:
//   lips_lint <file>...              lint; exit 1 if any finding
//   lips_lint --self-test <file>...  every finding must match a
//                                    `// lint-expect(<rule>)` marker on its
//                                    line, and every marker must fire
#include <cstdio>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Replace comments and string/char literals with spaces (newlines kept) so
/// rule regexes only ever see code. The raw text is still consulted for
/// `lips-lint: allow` and `lint-expect` markers, which live in comments.
std::string strip_to_code(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class St { Code, Line, Block, Str, Chr } st = St::Code;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out[i] = '\n';
      if (st == St::Line) st = St::Code;
      continue;
    }
    switch (st) {
      case St::Code:
        if (c == '/' && n == '/') {
          st = St::Line;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          ++i;
        } else if (c == '"') {
          st = St::Str;
          out[i] = '"';
        } else if (c == '\'') {
          st = St::Chr;
          out[i] = '\'';
        } else {
          out[i] = c;
        }
        break;
      case St::Line:
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Code;
          ++i;
        }
        break;
      case St::Str:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::Code;
          out[i] = '"';
        }
        break;
      case St::Chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::Code;
          out[i] = '\'';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool in_bench(const std::string& path) {
  return path.find("bench/") != std::string::npos;
}

bool in_solver_layer(const std::string& path) {
  return path.find("src/lp/") != std::string::npos ||
         path.find("src/core/") != std::string::npos;
}

/// Checkpoint serialization layer, subject to unordered-serialize. Only the
/// ckpt fixture opts in (violations.cpp seeds unordered containers for the
/// unordered-iteration rule and must not trip this one).
bool in_ckpt_layer(const std::string& path) {
  return path.find("src/ckpt/") != std::string::npos ||
         path.find("lint_fixtures/ckpt") != std::string::npos;
}

/// Library source subject to raw-stdout-in-lib: everything under src/ except
/// the obs exporters (whose whole job is formatting to a stream; they still
/// take the ostream from the caller rather than grabbing stdout). The lint
/// fixture opts in so the self-test can seed violations.
bool stdout_banned(const std::string& path) {
  if (path.find("lint_fixtures") != std::string::npos) return true;
  return path.find("src/") != std::string::npos &&
         path.find("src/obs/export") == std::string::npos;
}

struct FileLint {
  std::string path;
  std::vector<std::string> raw_lines;
  std::string code;  // comment/string-stripped, newline-preserving
  std::vector<Finding> findings;

  bool load() {
    std::ifstream in(path);
    if (!in) return false;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    code = strip_to_code(text);
    std::string line;
    std::stringstream ls(text);
    while (std::getline(ls, line)) raw_lines.push_back(line);
    return true;
  }

  bool suppressed(std::size_t line_no, const std::string& rule) const {
    if (line_no == 0 || line_no > raw_lines.size()) return false;
    return raw_lines[line_no - 1].find("lips-lint: allow(" + rule + ")") !=
           std::string::npos;
  }

  void add(std::size_t line_no, const std::string& rule,
           const std::string& message) {
    if (suppressed(line_no, rule)) return;
    findings.push_back({path, line_no, rule, message});
  }

  void scan_regex(const std::regex& re, const std::string& rule,
                  const std::string& message) {
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
      add(line_of(code, static_cast<std::size_t>(it->position())), rule,
          message);
    }
  }

  void run() {
    // raw-cost-double — money/data/time quantities must be dimensional types.
    if (!ends_with(path, "common/units.hpp")) {
      static const std::regex re(
          R"(\bdouble\s+[A-Za-z_]\w*(?:_cost\w*|_mc|_bytes|_secs)\b)");
      scan_regex(re, "raw-cost-double",
                 "cost/size/time quantity typed as raw double; use the "
                 "types in common/units.hpp");
    }

    // raw-rng — all randomness flows through the seeded lips::Rng.
    if (!ends_with(path, "common/rng.hpp")) {
      static const std::regex re(R"(\b(?:srand|rand)\s*\(|\brandom_device\b)");
      scan_regex(re, "raw-rng",
                 "unseeded/global RNG; use lips::Rng (common/rng.hpp)");
    }

    // unordered-iteration — iterating an unordered container leaks
    // implementation-defined order into whatever consumes the loop.
    {
      static const std::regex decl(
          R"(\bunordered_(?:map|set)\s*<[^;{]*?>\s+([A-Za-z_]\w*))");
      std::set<std::string> names;
      for (auto it = std::sregex_iterator(code.begin(), code.end(), decl);
           it != std::sregex_iterator(); ++it)
        names.insert((*it)[1].str());
      for (const std::string& name : names) {
        const std::regex iter(R"(for\s*\([^;()]*:\s*)" + name + R"(\s*\))" +
                              "|" + R"(\b)" + name + R"(\s*\.\s*begin\s*\()");
        scan_regex(iter, "unordered-iteration",
                   "iteration over std::unordered container '" + name +
                       "' has implementation-defined order; use std::map/"
                       "std::set or sort first");
      }
    }

    // float-type — the cost model is double-only end to end.
    {
      static const std::regex re(R"(\bfloat\b)");
      scan_regex(re, "float-type",
                 "float narrows the cost model's precision; use double or a "
                 "units.hpp type");
    }

    // nondet-time — simulator/tool output must not depend on wall time.
    if (!in_bench(path)) {
      static const std::regex re(
          R"(\b(?:system_clock|steady_clock|high_resolution_clock)\b)"
          R"(|\bgettimeofday\b|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))"
          R"(|\bclock\s*\(\s*\))");
      scan_regex(re, "nondet-time",
                 "wall-clock read in deterministic code; thread simulated "
                 "time through instead");
    }

    // direct-solver-ctor — the revised engine is an implementation detail of
    // the lp/core layers; everyone else goes through lp::make_solver (cold
    // solves) or core::EpochLpContext (warm-started epoch re-solves) so
    // iteration budgets and warm-start telemetry stay centralized.
    if (!in_solver_layer(path)) {
      static const std::regex re(R"(\bRevisedSimplexSolver\b)");
      scan_regex(re, "direct-solver-ctor",
                 "direct RevisedSimplexSolver use outside src/lp//src/core/; "
                 "construct via lp::make_solver or reuse "
                 "core::EpochLpContext");
    }

    // raw-stdout-in-lib — library code never writes to process stdout;
    // formatting belongs in the obs exporters (caller-supplied ostream) and
    // printing in the tools/ and bench/ binaries.
    if (stdout_banned(path)) {
      static const std::regex re(R"(\bstd\s*::\s*cout\b|\bprintf\s*\()");
      scan_regex(re, "raw-stdout-in-lib",
                 "printf/std::cout in src/ library code; return data or "
                 "write through an obs exporter's ostream instead");
    }

    // unordered-serialize — the checkpoint layer turns state into bytes, and
    // hash iteration order would leak straight into CRC-guarded files; ban
    // the containers outright there rather than auditing every loop.
    if (in_ckpt_layer(path)) {
      static const std::regex re(
          R"(\bunordered_(?:map|set|multimap|multiset)\b)");
      scan_regex(re, "unordered-serialize",
                 "unordered container in checkpoint serialization code; "
                 "snapshot bytes must be deterministic — use std::map/"
                 "std::set (or serialize a sorted copy upstream)");
    }

    // unchecked-solve-status — a solution's values are only meaningful when
    // its status was inspected; a solve that hit IterationLimit or proved
    // the model Infeasible hands back empty or stale vectors. Matches local
    // by-value declarations (`LpSolution s = ...;`) and flags each
    // .values/.objective use when the file never reads that solution's
    // .status or calls .optimal().
    {
      static const std::regex decl(R"(\bLpSolution\s+([A-Za-z_]\w*)\s*[=;])");
      std::set<std::string> names;
      for (auto it = std::sregex_iterator(code.begin(), code.end(), decl);
           it != std::sregex_iterator(); ++it)
        names.insert((*it)[1].str());
      for (const std::string& name : names) {
        const std::regex checked(R"(\b)" + name +
                                 R"(\s*\.\s*(?:status\b|optimal\s*\())");
        if (std::regex_search(code, checked)) continue;
        const std::regex use(R"(\b)" + name +
                             R"(\s*\.\s*(?:values|objective)\b)");
        scan_regex(use, "unchecked-solve-status",
                   "LpSolution '" + name +
                       "' consumed without inspecting .status/.optimal(); "
                       "guard IterationLimit/Infeasible before using its "
                       "values");
      }
    }
  }
};

/// Self-test: the fixture seeds one violation per rule, each tagged with
/// `// lint-expect(<rule>)`. Pass iff findings and markers agree exactly.
int self_test(FileLint& f) {
  std::set<std::pair<std::size_t, std::string>> expected;
  static const std::regex marker(R"(lint-expect\(([a-z-]+)\))");
  for (std::size_t i = 0; i < f.raw_lines.size(); ++i) {
    for (auto it = std::sregex_iterator(f.raw_lines[i].begin(),
                                        f.raw_lines[i].end(), marker);
         it != std::sregex_iterator(); ++it)
      expected.insert({i + 1, (*it)[1].str()});
  }
  std::set<std::pair<std::size_t, std::string>> got;
  for (const Finding& fd : f.findings) got.insert({fd.line, fd.rule});
  int failures = 0;
  for (const auto& [line, rule] : expected) {
    if (!got.count({line, rule})) {
      std::cerr << f.path << ":" << line << ": self-test: expected rule '"
                << rule << "' did not fire\n";
      ++failures;
    }
  }
  for (const auto& [line, rule] : got) {
    if (!expected.count({line, rule})) {
      std::cerr << f.path << ":" << line << ": self-test: unexpected finding '"
                << rule << "'\n";
      ++failures;
    }
  }
  if (failures == 0)
    std::cout << f.path << ": self-test OK (" << expected.size()
              << " seeded violations all detected)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  bool self = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: lips_lint [--self-test] <file>...\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "lips_lint: no input files\n";
    return 2;
  }
  int exit_code = 0;
  std::size_t total = 0;
  for (const std::string& path : files) {
    FileLint f;
    f.path = path;
    if (!f.load()) {
      std::cerr << "lips_lint: cannot read " << path << "\n";
      exit_code = 2;
      continue;
    }
    f.run();
    if (self) {
      if (self_test(f) != 0) exit_code = 1;
      continue;
    }
    for (const Finding& fd : f.findings) {
      std::cerr << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
                << fd.message << "\n";
      ++total;
    }
    if (!f.findings.empty()) exit_code = 1;
  }
  if (!self) {
    if (total == 0)
      std::cout << "lips-lint: " << files.size() << " files clean\n";
    else
      std::cerr << "lips-lint: " << total << " finding(s)\n";
  }
  return exit_code;
}
