// lips-lint — multi-pass source-tree checker for the invariants the test
// suite cannot see at runtime:
//
//   * cost correctness — every dollar-bearing quantity must travel through
//     the dimensional types in common/units.hpp, never as a raw double;
//   * determinism — no unseeded randomness, no iteration order leaking from
//     unordered containers into schedules or bills, no wall-clock reads;
//   * concurrency safety — ahead of the simulation farm, shared mutable
//     state must be impossible to introduce silently: no raw std::mutex
//     (the annotated lips::Mutex participates in clang -Wthread-safety),
//     no mutable statics, no un-annotated escape of per-thread Rng streams,
//     no unguarded members in mutex-holding classes.
//
// Engine: each file runs through four passes that build on each other —
//
//   1. lexical    read the file; strip comments and string/char literals to
//                 spaces (newlines kept) so later passes only see code;
//   2. structural brace-matched scan recording every class/struct extent
//                 (name, head, body range, top-level member statements);
//   3. symbols    collect per-file declaration state: unordered-container
//                 names, LpSolution names, per-class mutex/Rng members;
//   4. rules      evaluate every rule against the parsed state.
//
// Rules (suppress a single line with `// lips-lint: allow(<rule>)`):
//
//   raw-cost-double      double-typed *_cost* / *_mc / *_bytes / *_secs
//                        declaration outside common/units.hpp
//   raw-rng              rand()/srand()/std::random_device outside
//                        common/rng.hpp (use lips::Rng)
//   unordered-iteration  range-for or .begin() over a std::unordered_map/
//                        unordered_set declared in the same file
//   float-type           `float` anywhere (the cost model is double-only;
//                        mixing widths changes rounding)
//   nondet-time          system_clock / steady_clock / high_resolution_clock
//                        / gettimeofday / time(nullptr) / clock() outside
//                        bench/ (benchmarks measure wall time by design)
//   direct-solver-ctor   RevisedSimplexSolver named outside src/lp/ and
//                        src/core/ — construct through lp::make_solver or
//                        drive epoch re-solves via core::EpochLpContext so
//                        warm-start basis reuse and iteration budgets stay
//                        centralized
//   raw-stdout-in-lib    printf/std::cout inside src/ library code — library
//                        layers report through return values, exceptions, or
//                        the obs exporters (which take a caller-supplied
//                        ostream); only the obs exporters and the tools/
//                        binaries own process stdout
//   unchecked-solve-status
//                        an LpSolution's .values/.objective consumed while
//                        the file never inspects that solution's .status or
//                        .optimal() — IterationLimit/Infeasible solutions
//                        carry empty or stale vectors, so acting on them
//                        silently schedules garbage
//   unordered-serialize  any std::unordered_* container inside src/ckpt/ —
//                        snapshot byte streams must be byte-stable
//                        (ckpt/codec.hpp), and hash-order anywhere in the
//                        serialization layer is a latent nondeterminism bug
//                        even before someone iterates it; use std::map/
//                        std::set (layers above may keep unordered state but
//                        must serialize a sorted copy)
//   shared-mutable-static
//                        non-const static data at namespace or function
//                        scope in src/ — a mutable static is shared by every
//                        farm worker by definition; make it const, per-
//                        instance state, or `static thread_local` (exempt).
//                        Heuristic: a static whose declarator reaches `(`
//                        before any `=`/`;` is treated as a function
//                        declaration; spell static-object initializers with
//                        `=` or `{}` so the linter can see them
//   raw-mutex            std::mutex / std::lock_guard / friends outside
//                        common/thread_annotations.hpp — lips::Mutex and
//                        lips::MutexLock carry the clang thread-safety
//                        capability annotations; a raw mutex is invisible
//                        to -Wthread-safety
//   rng-by-ref-escape    class member storing `Rng&`/`Rng*` without a
//                        LIPS_PER_THREAD marker on the member or an
//                        externally-synchronized marker on the class — a
//                        stored stream reference is how one Rng silently
//                        ends up drawn from two threads (or re-ordered),
//                        breaking seed reproducibility
//   unguarded-member-mutation
//                        a class holding a by-value lips::Mutex member has a
//                        mutable data member with no LIPS_GUARDED_BY(...)
//                        annotation — the member is invisible to clang's
//                        analysis, so a lock-free access would compile
//                        silently. Atomics, const/static members, and
//                        LIPS_PER_THREAD-marked members are exempt
//   farm-shared-state    (src/farm/ only) the farm's serial-vs-threaded
//                        bit-identity contract bans hidden shared or sticky
//                        state: any non-const static — *including*
//                        thread_local, which leaks state between runs when
//                        pool threads are reused — and any mutable data
//                        member of a class that does not declare its thread
//                        role (a LIPS_EXTERNALLY_SYNCHRONIZED or
//                        LIPS_PER_THREAD head marker, or a per-member
//                        LIPS_GUARDED_BY/LIPS_PER_THREAD annotation)
//   blocking-call-in-handler
//                        (src/svc/session*, src/svc/service* only) a raw
//                        blocking primitive — sleeps, synchronous fstream/
//                        fopen, fd reads, socket waits (accept/recv/poll/
//                        select/connect) — inside the service's command-
//                        handler layer, which runs on each session's single
//                        worker thread; a blocked handler stalls the whole
//                        tenant behind the bounded queue
//
// The four concurrency rules apply under src/ (and to lint_fixtures/tsa_*
// files, which opt in so the self-test can seed violations);
// farm-shared-state applies under src/farm/ (and lint_fixtures/tsa_farm*);
// blocking-call-in-handler applies to the svc handler layer (and
// lint_fixtures/svc_handler*).
//
// Usage:
//   lips_lint [--format=json] <file>...   lint; exit 1 if any finding
//   lips_lint --self-test <file>...       every finding must match a
//                                         `// lint-expect(<rule>)` marker on
//                                         its line, and every marker must
//                                         fire
//
// Tree scans skip any path with a directory component starting with "build"
// (configured build trees: build/, build-asan/, ...) and anything under
// bench/results/ (committed benchmark artifacts) so a stray generated or
// vendored file can never produce phantom findings.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// --- Pass 1: lexical --------------------------------------------------------

/// Replace comments and string/char literals with spaces (newlines kept) so
/// rule regexes only ever see code. The raw text is still consulted for
/// `lips-lint: allow` and `lint-expect` markers, which live in comments.
std::string strip_to_code(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class St { Code, Line, Block, Str, Chr } st = St::Code;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out[i] = '\n';
      if (st == St::Line) st = St::Code;
      continue;
    }
    switch (st) {
      case St::Code:
        if (c == '/' && n == '/') {
          st = St::Line;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          ++i;
        } else if (c == '"') {
          st = St::Str;
          out[i] = '"';
        } else if (c == '\'') {
          st = St::Chr;
          out[i] = '\'';
        } else {
          out[i] = c;
        }
        break;
      case St::Line:
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Code;
          ++i;
        }
        break;
      case St::Str:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::Code;
          out[i] = '"';
        }
        break;
      case St::Chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::Code;
          out[i] = '\'';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- Path gating ------------------------------------------------------------

bool in_bench(const std::string& path) {
  return path.find("bench/") != std::string::npos;
}

bool in_solver_layer(const std::string& path) {
  return path.find("src/lp/") != std::string::npos ||
         path.find("src/core/") != std::string::npos;
}

/// Checkpoint serialization layer, subject to unordered-serialize. Only the
/// ckpt fixture opts in (violations.cpp seeds unordered containers for the
/// unordered-iteration rule and must not trip this one).
bool in_ckpt_layer(const std::string& path) {
  return path.find("src/ckpt/") != std::string::npos ||
         path.find("lint_fixtures/ckpt") != std::string::npos;
}

/// Library source subject to raw-stdout-in-lib: everything under src/ except
/// the obs exporters (whose whole job is formatting to a stream; they still
/// take the ostream from the caller rather than grabbing stdout). The lint
/// fixture opts in so the self-test can seed violations.
bool stdout_banned(const std::string& path) {
  if (path.find("lint_fixtures") != std::string::npos) return true;
  return path.find("src/") != std::string::npos &&
         path.find("src/obs/export") == std::string::npos;
}

/// Concurrency rules: library code under src/, plus the tsa_* fixtures that
/// seed violations for the self-test.
bool in_concurrency_scope(const std::string& path) {
  return path.find("src/") != std::string::npos ||
         path.find("lint_fixtures/tsa_") != std::string::npos;
}

/// The farm-shared-state rule: the worker-pool library itself, plus its
/// seeded fixture (which also matches the tsa_ concurrency opt-in above, so
/// fixture lines carry markers for every rule that fires on them).
bool in_farm_scope(const std::string& path) {
  return path.find("src/farm/") != std::string::npos ||
         path.find("lint_fixtures/tsa_farm") != std::string::npos;
}

/// The blocking-call-in-handler rule: the svc command-handler layer only —
/// session (worker-side handlers) and service (reader-side dispatch). The
/// transport (server.cpp) and client legitimately block on fds, so they are
/// deliberately out of scope; the svc_handler fixture seeds violations.
bool in_svc_handler_scope(const std::string& path) {
  return path.find("src/svc/session") != std::string::npos ||
         path.find("src/svc/service") != std::string::npos ||
         path.find("lint_fixtures/svc_handler") != std::string::npos;
}

/// Tree-scan exclusion: configured build trees (any directory component
/// starting with "build": build/, build-asan/, build.rel/, ...) and the
/// committed benchmark artifacts under bench/results/. Only directory
/// components count — a *file* named build_info.cpp is still linted.
bool excluded_from_scan(const std::string& path) {
  std::vector<std::string> comps;
  std::string comp;
  std::stringstream ss(path);
  while (std::getline(ss, comp, '/')) comps.push_back(comp);
  if (!comps.empty()) comps.pop_back();  // drop the filename component
  for (std::size_t i = 0; i < comps.size(); ++i) {
    if (comps[i].rfind("build", 0) == 0) return true;
    if (comps[i] == "results" && i > 0 && comps[i - 1] == "bench") return true;
  }
  return false;
}

// --- Pass 2: structural -----------------------------------------------------

/// One top-level member statement inside a class body (text up to and
/// including its terminating ';', nested braces collapsed).
struct MemberStmt {
  std::size_t offset = 0;  // into the file's stripped code
  std::string text;
};

struct ClassInfo {
  std::string name;
  std::string head;             // between the class keyword and the '{'
  std::size_t body_begin = 0;   // offset just past '{'
  std::size_t body_end = 0;     // offset of matching '}'
  std::vector<MemberStmt> members;
};

/// Brace-matched scan for class/struct definitions. Handles annotation
/// macros and base clauses in the head; skips `enum class`. Nested classes
/// are recorded separately (their bodies are excluded from the parent's
/// member statements by the depth tracking below).
std::vector<ClassInfo> parse_classes(const std::string& code) {
  std::vector<ClassInfo> out;
  static const std::regex head_re(
      R"((class|struct)\s+((?:LIPS_[A-Z_]+\s*(?:\([^()]*\))?\s+)*)()"
      R"([A-Za-z_]\w*)\s*(?:final\s*)?((?::[^;{]*)?)\{)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), head_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position());
    // Reject `enum class` / `enum struct`.
    std::size_t back = at;
    while (back > 0 && (code[back - 1] == ' ' || code[back - 1] == '\n'))
      --back;
    if (back >= 4 && code.compare(back - 4, 4, "enum") == 0) continue;
    ClassInfo ci;
    ci.name = (*it)[3].str();
    ci.head = (*it)[2].str() + (*it)[4].str();
    ci.body_begin = at + static_cast<std::size_t>(it->length());
    // Match the brace.
    int depth = 1;
    std::size_t i = ci.body_begin;
    for (; i < code.size() && depth > 0; ++i) {
      if (code[i] == '{') ++depth;
      if (code[i] == '}') --depth;
    }
    if (depth != 0) continue;  // unbalanced (macro soup) — skip the class
    ci.body_end = i - 1;
    // Top-level member statements: split on ';' at depth 0 relative to the
    // body, collapsing nested {...} (member functions, nested types) so a
    // function body's contents never masquerade as a declaration.
    std::string stmt;
    std::size_t stmt_begin = ci.body_begin;
    int nest = 0;
    for (std::size_t p = ci.body_begin; p < ci.body_end; ++p) {
      const char c = code[p];
      if (c == '{') {
        ++nest;
        continue;
      }
      if (c == '}') {
        --nest;
        // A '}' closing a member-function body also ends a "statement".
        if (nest == 0) {
          stmt.clear();
          stmt_begin = p + 1;
        }
        continue;
      }
      if (nest > 0) continue;
      if (stmt.empty()) {
        // Never start a statement on whitespace: findings anchor to the
        // first token's line, not the previous declaration's newline.
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
        stmt_begin = p;
      }
      stmt += c;
      if (c == ';') {
        ci.members.push_back({stmt_begin, stmt});
        stmt.clear();
        stmt_begin = p + 1;
      }
    }
    out.push_back(std::move(ci));
  }
  return out;
}

// --- The per-file engine ----------------------------------------------------

struct FileLint {
  std::string path;
  // Pass 1 state.
  std::vector<std::string> raw_lines;
  std::string code;  // comment/string-stripped, newline-preserving
  // Pass 2 state.
  std::vector<ClassInfo> classes;
  // Pass 3 state.
  std::set<std::string> unordered_names;
  std::set<std::string> lp_solution_names;

  std::vector<Finding> findings;

  bool load() {
    std::ifstream in(path);
    if (!in) return false;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    code = strip_to_code(text);
    std::string line;
    std::stringstream ls(text);
    while (std::getline(ls, line)) raw_lines.push_back(line);
    return true;
  }

  void parse() {
    classes = parse_classes(code);
    {
      static const std::regex decl(
          R"(\bunordered_(?:map|set)\s*<[^;{]*?>\s+([A-Za-z_]\w*))");
      for (auto it = std::sregex_iterator(code.begin(), code.end(), decl);
           it != std::sregex_iterator(); ++it)
        unordered_names.insert((*it)[1].str());
    }
    {
      static const std::regex decl(R"(\bLpSolution\s+([A-Za-z_]\w*)\s*[=;])");
      for (auto it = std::sregex_iterator(code.begin(), code.end(), decl);
           it != std::sregex_iterator(); ++it)
        lp_solution_names.insert((*it)[1].str());
    }
  }

  bool suppressed(std::size_t line_no, const std::string& rule) const {
    if (line_no == 0 || line_no > raw_lines.size()) return false;
    return raw_lines[line_no - 1].find("lips-lint: allow(" + rule + ")") !=
           std::string::npos;
  }

  void add(std::size_t line_no, const std::string& rule,
           const std::string& message) {
    if (suppressed(line_no, rule)) return;
    findings.push_back({path, line_no, rule, message});
  }

  void scan_regex(const std::regex& re, const std::string& rule,
                  const std::string& message) {
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
      add(line_of(code, static_cast<std::size_t>(it->position())), rule,
          message);
    }
  }

  // --- Pass 4: rules --------------------------------------------------------

  void rule_raw_cost_double() {
    if (ends_with(path, "common/units.hpp")) return;
    static const std::regex re(
        R"(\bdouble\s+[A-Za-z_]\w*(?:_cost\w*|_mc|_bytes|_secs)\b)");
    scan_regex(re, "raw-cost-double",
               "cost/size/time quantity typed as raw double; use the "
               "types in common/units.hpp");
  }

  void rule_raw_rng() {
    if (ends_with(path, "common/rng.hpp")) return;
    static const std::regex re(R"(\b(?:srand|rand)\s*\(|\brandom_device\b)");
    scan_regex(re, "raw-rng",
               "unseeded/global RNG; use lips::Rng (common/rng.hpp)");
  }

  void rule_unordered_iteration() {
    for (const std::string& name : unordered_names) {
      const std::regex iter(R"(for\s*\([^;()]*:\s*)" + name + R"(\s*\))" +
                            "|" + R"(\b)" + name + R"(\s*\.\s*begin\s*\()");
      scan_regex(iter, "unordered-iteration",
                 "iteration over std::unordered container '" + name +
                     "' has implementation-defined order; use std::map/"
                     "std::set or sort first");
    }
  }

  void rule_float_type() {
    static const std::regex re(R"(\bfloat\b)");
    scan_regex(re, "float-type",
               "float narrows the cost model's precision; use double or a "
               "units.hpp type");
  }

  void rule_nondet_time() {
    if (in_bench(path)) return;
    static const std::regex re(
        R"(\b(?:system_clock|steady_clock|high_resolution_clock)\b)"
        R"(|\bgettimeofday\b|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))"
        R"(|\bclock\s*\(\s*\))");
    scan_regex(re, "nondet-time",
               "wall-clock read in deterministic code; thread simulated "
               "time through instead");
  }

  void rule_direct_solver_ctor() {
    // The revised engine is an implementation detail of the lp/core layers;
    // everyone else goes through lp::make_solver (cold solves) or
    // core::EpochLpContext (warm-started epoch re-solves) so iteration
    // budgets and warm-start telemetry stay centralized.
    if (in_solver_layer(path)) return;
    static const std::regex re(R"(\bRevisedSimplexSolver\b)");
    scan_regex(re, "direct-solver-ctor",
               "direct RevisedSimplexSolver use outside src/lp//src/core/; "
               "construct via lp::make_solver or reuse "
               "core::EpochLpContext");
  }

  void rule_raw_stdout_in_lib() {
    if (!stdout_banned(path)) return;
    static const std::regex re(R"(\bstd\s*::\s*cout\b|\bprintf\s*\()");
    scan_regex(re, "raw-stdout-in-lib",
               "printf/std::cout in src/ library code; return data or "
               "write through an obs exporter's ostream instead");
  }

  void rule_unordered_serialize() {
    // The checkpoint layer turns state into bytes, and hash iteration order
    // would leak straight into CRC-guarded files; ban the containers
    // outright there rather than auditing every loop.
    if (!in_ckpt_layer(path)) return;
    static const std::regex re(
        R"(\bunordered_(?:map|set|multimap|multiset)\b)");
    scan_regex(re, "unordered-serialize",
               "unordered container in checkpoint serialization code; "
               "snapshot bytes must be deterministic — use std::map/"
               "std::set (or serialize a sorted copy upstream)");
  }

  void rule_unchecked_solve_status() {
    // A solution's values are only meaningful when its status was
    // inspected; a solve that hit IterationLimit or proved the model
    // Infeasible hands back empty or stale vectors.
    for (const std::string& name : lp_solution_names) {
      const std::regex checked(R"(\b)" + name +
                               R"(\s*\.\s*(?:status\b|optimal\s*\())");
      if (std::regex_search(code, checked)) continue;
      const std::regex use(R"(\b)" + name +
                           R"(\s*\.\s*(?:values|objective)\b)");
      scan_regex(use, "unchecked-solve-status",
                 "LpSolution '" + name +
                     "' consumed without inspecting .status/.optimal(); "
                     "guard IterationLimit/Infeasible before using its "
                     "values");
    }
  }

  void rule_shared_mutable_static() {
    if (!in_concurrency_scope(path)) return;
    static const std::regex re(R"(\bstatic\b)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t at = static_cast<std::size_t>(it->position());
      const std::size_t after = at + 6;
      // static_cast / static_assert are keywords of their own.
      if (code.compare(after, 1, "_") == 0) continue;
      // Declaration text up to the terminator; bounded so a parse mishap
      // cannot scan the whole file.
      const std::size_t end = code.find_first_of(";{", after);
      if (end == std::string::npos || end - after > 500) continue;
      const std::string decl = code.substr(after, end - after);
      // const/constexpr statics are immutable — shared reads are fine.
      if (std::regex_search(decl, std::regex(R"(\bconst(?:expr|init)?\b)")))
        continue;
      // thread_local statics are per-thread by definition (the sanctioned
      // escape hatch for genuinely-needed function-scope state).
      if (decl.find("thread_local") != std::string::npos) continue;
      // Function heuristic: a '(' before any '=' marks a declarator with a
      // parameter list (static member/free function) — not shared data.
      const std::size_t paren = decl.find('(');
      const std::size_t eq = decl.find('=');
      if (paren != std::string::npos &&
          (eq == std::string::npos || paren < eq))
        continue;
      // An empty declarator ("static;" after macro stripping) is noise.
      if (std::regex_search(
              decl, std::regex(R"(^\s*$)")))
        continue;
      add(line_of(code, at), "shared-mutable-static",
          "mutable static is shared state across every farm worker; make it "
          "const, per-instance, or static thread_local");
    }
  }

  void rule_raw_mutex() {
    if (!in_concurrency_scope(path)) return;
    if (ends_with(path, "common/thread_annotations.hpp")) return;
    static const std::regex re(
        R"(\bstd\s*::\s*(?:recursive_|timed_|recursive_timed_|shared_)"
        R"(|shared_timed_)?mutex\b)"
        R"(|\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b)");
    scan_regex(re, "raw-mutex",
               "raw std::mutex/lock is invisible to clang -Wthread-safety; "
               "use lips::Mutex + lips::MutexLock "
               "(common/thread_annotations.hpp)");
  }

  void rule_rng_by_ref_escape() {
    if (!in_concurrency_scope(path)) return;
    static const std::regex member_re(
        R"(\bRng\s*[&*]\s*(?:const\s+)?([A-Za-z_]\w*)\s*(?:;|=|\{))");
    for (const ClassInfo& ci : classes) {
      // A class annotated externally-synchronized / per-thread owns its
      // synchronization story wholesale.
      const bool class_marked =
          ci.head.find("LIPS_EXTERNALLY_SYNCHRONIZED") != std::string::npos ||
          ci.head.find("LIPS_PER_THREAD") != std::string::npos;
      if (class_marked) continue;
      for (const MemberStmt& m : ci.members) {
        std::smatch sm;
        if (!std::regex_search(m.text, sm, member_re)) continue;
        if (m.text.find("LIPS_PER_THREAD") != std::string::npos) continue;
        add(line_of(code, m.offset + static_cast<std::size_t>(sm.position())),
            "rng-by-ref-escape",
            "class '" + ci.name + "' stores an Rng reference ('" +
                sm[1].str() +
                "') without LIPS_PER_THREAD; a stored stream escapes its "
                "owner thread and breaks seed reproducibility");
      }
    }
  }

  void rule_unguarded_member_mutation() {
    if (!in_concurrency_scope(path)) return;
    // A by-value lips::Mutex member marks the class as internally
    // synchronized; every mutable member must then be visible to the
    // analysis. (Mutex& members — MutexLock-style RAII — do not count.)
    static const std::regex mutex_member(
        R"(\b(?:lips\s*::\s*)?(?:mutable\s+)?Mutex\s+([A-Za-z_]\w*)\s*;)");
    static const std::regex data_member(
        R"(\b(?:[A-Za-z_][\w:<>,&*\s]*?)\s[&*]?([A-Za-z_]\w*)\s*(?:;|=|\{))");
    for (const ClassInfo& ci : classes) {
      std::set<std::string> mutex_names;
      for (const MemberStmt& m : ci.members) {
        std::smatch sm;
        std::string rest = m.text;
        while (std::regex_search(rest, sm, mutex_member)) {
          mutex_names.insert(sm[1].str());
          rest = sm.suffix();
        }
      }
      if (mutex_names.empty()) continue;
      for (const MemberStmt& m : ci.members) {
        const std::string& t = m.text;
        // Skip: the mutexes themselves, functions (parameter list before
        // any initializer), immutable/static/atomic members, references
        // (non-reseatable), using/typedef/friend declarations, and members
        // already annotated or explicitly marked per-thread.
        if (t.find("LIPS_GUARDED_BY") != std::string::npos) continue;
        if (t.find("LIPS_PER_THREAD") != std::string::npos) continue;
        if (std::regex_search(t, std::regex(R"(\bMutex\s+[A-Za-z_])")))
          continue;
        if (std::regex_search(
                t, std::regex(R"(\b(?:static|const|constexpr|using|typedef)"
                              R"(|friend|atomic|enum|class|struct)\b)")))
          continue;
        const std::size_t paren = t.find('(');
        const std::size_t eq = t.find('=');
        const std::size_t brace = t.find('{');
        const std::size_t init = std::min(eq, brace);
        if (paren != std::string::npos &&
            (init == std::string::npos || paren < init))
          continue;
        if (t.find('&') != std::string::npos &&
            t.find("&&") == std::string::npos && paren == std::string::npos &&
            init == std::string::npos)
          continue;
        std::smatch sm;
        if (!std::regex_search(t, sm, data_member)) continue;
        add(line_of(code, m.offset), "unguarded-member-mutation",
            "member '" + sm[1].str() + "' of mutex-holding class '" + ci.name +
                "' lacks LIPS_GUARDED_BY(<mutex>); unguarded members are "
                "invisible to -Wthread-safety");
      }
    }
  }

  void rule_farm_shared_state() {
    if (!in_farm_scope(path)) return;
    // Part 1: statics. Stricter than shared-mutable-static — thread_local
    // is NOT exempt here. Pool threads are reused across batches and cells,
    // so thread_local state survives from one run into the next and makes a
    // result depend on which worker executed it: exactly the failure the
    // farm's bit-identity contract forbids.
    {
      static const std::regex re(R"(\bstatic\b)");
      for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
           it != std::sregex_iterator(); ++it) {
        const std::size_t at = static_cast<std::size_t>(it->position());
        const std::size_t after = at + 6;
        if (code.compare(after, 1, "_") == 0) continue;  // static_cast/assert
        const std::size_t end = code.find_first_of(";{", after);
        if (end == std::string::npos || end - after > 500) continue;
        const std::string decl = code.substr(after, end - after);
        if (std::regex_search(decl, std::regex(R"(\bconst(?:expr|init)?\b)")))
          continue;
        const std::size_t paren = decl.find('(');
        const std::size_t eq = decl.find('=');
        if (paren != std::string::npos &&
            (eq == std::string::npos || paren < eq))
          continue;  // function declarator, not data
        if (std::regex_search(decl, std::regex(R"(^\s*$)"))) continue;
        const bool tl = decl.find("thread_local") != std::string::npos;
        add(line_of(code, at), "farm-shared-state",
            tl ? "thread_local static in farm code outlives a run: pool "
                 "threads are reused, so sticky per-thread state breaks "
                 "serial-vs-threaded bit-identity; pass state through "
                 "run-local objects instead"
               : "mutable static in farm code is shared across workers; "
                 "the farm's determinism contract requires all mutable "
                 "state to be run-local");
      }
    }
    // Part 2: every farm class must declare its thread role. A head marker
    // (LIPS_EXTERNALLY_SYNCHRONIZED / LIPS_PER_THREAD) covers the whole
    // class; otherwise each mutable data member needs its own annotation.
    for (const ClassInfo& ci : classes) {
      const bool class_marked =
          ci.head.find("LIPS_EXTERNALLY_SYNCHRONIZED") != std::string::npos ||
          ci.head.find("LIPS_PER_THREAD") != std::string::npos;
      if (class_marked) continue;
      static const std::regex data_member(
          R"(\b(?:[A-Za-z_][\w:<>,&*\s]*?)\s[&*]?([A-Za-z_]\w*)\s*(?:;|=|\{))");
      for (const MemberStmt& m : ci.members) {
        const std::string& t = m.text;
        if (t.find("LIPS_GUARDED_BY") != std::string::npos) continue;
        if (t.find("LIPS_PER_THREAD") != std::string::npos) continue;
        if (std::regex_search(
                t, std::regex(R"(\b(?:static|const|constexpr|using|typedef)"
                              R"(|friend|atomic|enum|class|struct|Mutex)\b)")))
          continue;
        const std::size_t paren = t.find('(');
        const std::size_t eq = t.find('=');
        const std::size_t brace = t.find('{');
        const std::size_t init = std::min(eq, brace);
        if (paren != std::string::npos &&
            (init == std::string::npos || paren < init))
          continue;  // member function
        if (t.find('&') != std::string::npos &&
            t.find("&&") == std::string::npos && paren == std::string::npos &&
            init == std::string::npos)
          continue;  // reference member (non-reseatable)
        std::smatch sm;
        if (!std::regex_search(t, sm, data_member)) continue;
        add(line_of(code, m.offset), "farm-shared-state",
            "member '" + sm[1].str() + "' of farm class '" + ci.name +
                "' has no declared thread role; mark the class "
                "LIPS_EXTERNALLY_SYNCHRONIZED / LIPS_PER_THREAD or annotate "
                "the member (DESIGN.md §13 determinism contract)");
      }
    }
  }

  void rule_blocking_call_in_handler() {
    if (!in_svc_handler_scope(path)) return;
    // One worker thread serves every queued command of a session; a raw
    // blocking primitive in the handler layer stalls the whole tenant (and
    // the BUSY backpressure behind it). Sleeps, synchronous file streams,
    // and direct fd/socket waits all belong in the transport (server.cpp)
    // or the ckpt/obs layers the handlers call through.
    static const std::regex re(
        R"((?:\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\s*\()"
        R"(|\bsleep\s*\(|\b[io]?fstream\b(?!>)|\bfopen\s*\(|\bfreopen\s*\()"
        R"(|\bread\s*\(|\brecv\s*\(|\brecvfrom\s*\(|\baccept\s*\()"
        R"(|\bpoll\s*\(|\bselect\s*\(|\bconnect\s*\(|\bwaitpid\s*\()"
        R"(|\bgetchar\s*\(|\bscanf\s*\())");
    scan_regex(re, "blocking-call-in-handler",
               "blocking primitive in a svc command handler; handlers run "
               "on the session's only worker thread — push waits into the "
               "transport or a lower layer");
  }

  void run() {
    parse();
    rule_raw_cost_double();
    rule_raw_rng();
    rule_unordered_iteration();
    rule_float_type();
    rule_nondet_time();
    rule_direct_solver_ctor();
    rule_raw_stdout_in_lib();
    rule_unordered_serialize();
    rule_unchecked_solve_status();
    rule_shared_mutable_static();
    rule_raw_mutex();
    rule_rng_by_ref_escape();
    rule_unguarded_member_mutation();
    rule_farm_shared_state();
    rule_blocking_call_in_handler();
  }
};

// --- Output -----------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Machine-readable findings: a JSON array of {file, line, rule, message},
/// written to stdout (CI turns each element into a GitHub problem-matcher
/// annotation). Empty array when clean; exit code still signals findings.
void print_json(const std::vector<Finding>& findings) {
  std::cout << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "  {\"file\": \"" << json_escape(f.file)
              << "\", \"line\": " << f.line << ", \"rule\": \""
              << json_escape(f.rule) << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "]\n" : "\n]\n");
}

/// Self-test: the fixture seeds one violation per rule, each tagged with
/// `// lint-expect(<rule>)`. Pass iff findings and markers agree exactly.
int self_test(FileLint& f) {
  std::set<std::pair<std::size_t, std::string>> expected;
  static const std::regex marker(R"(lint-expect\(([a-z-]+)\))");
  for (std::size_t i = 0; i < f.raw_lines.size(); ++i) {
    for (auto it = std::sregex_iterator(f.raw_lines[i].begin(),
                                        f.raw_lines[i].end(), marker);
         it != std::sregex_iterator(); ++it)
      expected.insert({i + 1, (*it)[1].str()});
  }
  std::set<std::pair<std::size_t, std::string>> got;
  for (const Finding& fd : f.findings) got.insert({fd.line, fd.rule});
  int failures = 0;
  for (const auto& [line, rule] : expected) {
    if (!got.count({line, rule})) {
      std::cerr << f.path << ":" << line << ": self-test: expected rule '"
                << rule << "' did not fire\n";
      ++failures;
    }
  }
  for (const auto& [line, rule] : got) {
    if (!expected.count({line, rule})) {
      std::cerr << f.path << ":" << line << ": self-test: unexpected finding '"
                << rule << "'\n";
      ++failures;
    }
  }
  if (failures == 0)
    std::cout << f.path << ": self-test OK (" << expected.size()
              << " seeded violations all detected)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  bool self = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: lips_lint [--self-test] [--format=json|text] "
                   "<file>...\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "lips_lint: no input files\n";
    return 2;
  }
  int exit_code = 0;
  std::size_t skipped = 0;
  std::vector<Finding> all;
  std::size_t linted = 0;
  for (const std::string& path : files) {
    if (!self && excluded_from_scan(path)) {
      ++skipped;
      continue;
    }
    FileLint f;
    f.path = path;
    if (!f.load()) {
      std::cerr << "lips_lint: cannot read " << path << "\n";
      exit_code = 2;
      continue;
    }
    ++linted;
    f.run();
    if (self) {
      if (self_test(f) != 0) exit_code = 1;
      continue;
    }
    if (!f.findings.empty()) exit_code = 1;
    if (json) {
      all.insert(all.end(), f.findings.begin(), f.findings.end());
    } else {
      for (const Finding& fd : f.findings)
        std::cerr << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
                  << fd.message << "\n";
      all.insert(all.end(), f.findings.begin(), f.findings.end());
    }
  }
  if (!self) {
    if (json) {
      print_json(all);
    } else if (all.empty()) {
      std::cout << "lips-lint: " << linted << " files clean";
      if (skipped > 0)
        std::cout << " (" << skipped
                  << " skipped under build*/ or bench/results/)";
      std::cout << "\n";
    } else {
      std::cerr << "lips-lint: " << all.size() << " finding(s)\n";
    }
  }
  return exit_code;
}
