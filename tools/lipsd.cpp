// lipsd — the long-running LiPS co-scheduler service (DESIGN.md §14).
//
// This file is deliberately a thin shell: every decision that can be made
// in a pure function lives in svc::parse_daemon_args (strict flags, exit
// 64 on anything unknown) and the svc library (protocol, sessions,
// transports). All main() adds is process plumbing — signal handlers,
// stderr, exit codes.
//
// Usage:
//   lipsd --socket /tmp/lipsd.sock [--snapshot-dir DIR] [--queue-capacity N]
//   lipsd --stdio                  # one session over stdin/stdout
//   lipsd --version | --help
#include <csignal>
#include <cstdlib>
#include <iostream>

#include "common/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/daemon.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

// The SIGTERM/SIGINT handler may only touch async-signal-safe state;
// Server::request_stop() is one write(2) to a self-pipe, which qualifies.
lips::svc::Server* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using lips::svc::DaemonArgs;
  const DaemonArgs args =
      lips::svc::parse_daemon_args({argv + 1, argv + argc});

  switch (args.mode) {
    case DaemonArgs::Mode::Version:
      std::cout << lips::version_line() << "\n";
      return 0;
    case DaemonArgs::Mode::Help:
      std::cout << lips::svc::daemon_usage();
      return 0;
    case DaemonArgs::Mode::Error:
      std::cerr << "lipsd: " << args.error << "\n"
                << lips::svc::daemon_usage();
      return 64;  // EX_USAGE
    case DaemonArgs::Mode::Serve:
      break;
  }

  lips::obs::MetricRegistry metrics;
  lips::obs::Tracer tracer;
  lips::svc::ServiceOptions options;
  options.queue_capacity = args.queue_capacity;
  options.snapshot_root = args.snapshot_dir;
  options.metrics = &metrics;
  options.tracer = &tracer;
  lips::svc::Service service(options);
  lips::svc::Server server(service);

  if (args.stdio) {
    // Single-connection mode: serve stdin/stdout on this thread until EOF
    // or QUIT. No listener, no signal plumbing needed — closing stdin is
    // the shutdown protocol.
    server.serve_fd(0, 1);
    return 0;
  }

  g_server = &server;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a dying client must not kill the daemon

  try {
    server.listen_unix(args.socket_path);
  } catch (const std::exception& e) {
    std::cerr << "lipsd: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "lipsd: listening on " << server.socket_path() << "\n";
  server.run();
  std::cerr << "lipsd: clean shutdown\n";
  return 0;
}
